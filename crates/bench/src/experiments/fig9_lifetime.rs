//! Fig. 9: battery lifetime — remaining energy over time for Direct
//! Upload, SmartEye, MRC, BEES-EA, and BEES, uploading one image group per
//! interval until the battery dies.
//!
//! Paper shapes: the four non-adaptive schemes discharge (near-)linearly;
//! BEES' curve is convex (its slope flattens as `Ebat` drops); lifetime
//! ordering is Direct < SmartEye < MRC < BEES-EA < BEES.

use crate::args::ExpArgs;
use crate::table::{pct, Table};
use bees_core::schemes::{Bees, DirectUpload, Mrc, SmartEye, UploadScheme};
use bees_core::sessions::{run_lifetime_traced, LifetimeConfig, LifetimeResult};
use bees_core::BeesConfig;
use bees_datasets::SceneConfig;
use bees_energy::Battery;
use bees_net::BandwidthTrace;
use bees_telemetry::{JsonlSink, Telemetry};

/// Full experiment result.
#[derive(Debug, Clone)]
pub struct Fig9Result {
    /// One lifetime run per scheme, in [Direct, SmartEye, MRC, BEES-EA,
    /// BEES] order.
    pub runs: Vec<LifetimeResult>,
}

impl Fig9Result {
    /// Prints the discharge curves and lifetime extensions.
    pub fn print(&self) {
        println!("\n== Fig. 9: battery lifetime ==");
        let mut t = Table::new(vec![
            "scheme",
            "lifetime (min)",
            "groups uploaded",
            "vs Direct",
        ]);
        let direct_life = self.runs[0].lifetime_s.max(1e-9);
        for r in &self.runs {
            t.row(vec![
                r.scheme.clone(),
                format!("{:.0}", r.lifetime_s / 60.0),
                r.groups_uploaded.to_string(),
                pct(r.lifetime_s / direct_life - 1.0),
            ]);
        }
        t.print();

        println!("\ndischarge curves (Ebat % per interval):");
        let mut t = Table::new(vec![
            "t (min)", "Direct", "SmartEye", "MRC", "BEES-EA", "BEES",
        ]);
        let max_samples = self.runs.iter().map(|r| r.samples.len()).max().unwrap_or(0);
        for i in 0..max_samples {
            let mut row = Vec::with_capacity(6);
            let time = self
                .runs
                .iter()
                .find_map(|r| r.samples.get(i).map(|s| s.time_s))
                .unwrap_or(0.0);
            row.push(format!("{:.0}", time / 60.0));
            for r in &self.runs {
                row.push(match r.samples.get(i) {
                    Some(s) => format!("{:.0}", s.ebat * 100.0),
                    None => "-".to_string(),
                });
            }
            t.row(row);
        }
        t.print();
    }
}

/// Runs all five schemes through the lifetime session.
pub fn run(args: &ExpArgs) -> Fig9Result {
    let mut config = BeesConfig {
        trace: BandwidthTrace::constant(256_000.0).expect("constant trace is valid"),
        ..BeesConfig::default()
    };
    let group_size = args.scaled(40, 4);
    // Size the interval so a Direct Upload group fills ~70% of it (the
    // paper's geometry: 40 x ~22 s uploads inside a 20-minute slot), and
    // the battery so Direct survives ~12 intervals.
    let scene = SceneConfig::default();
    let probe = bees_datasets::Scene::new(args.seed ^ 0xF1F9, scene)
        .render(&bees_datasets::ViewJitter::identity());
    let camera_bytes = bees_image::codec::encoded_rgb_size(&probe, config.camera_quality)
        .expect("valid camera quality") as f64;
    let group_upload_s = group_size as f64 * camera_bytes * 8.0 / 256_000.0;
    let interval_s = group_upload_s / 0.7;
    let intervals_direct = 12.0;
    let per_interval =
        interval_s * config.energy.idle_watts + group_upload_s * config.energy.radio_tx_watts;
    config.battery = Battery::from_joules(per_interval * intervals_direct);

    let lt = LifetimeConfig {
        group_size,
        n_groups: 200,
        interval_s,
        cross_ratio: 0.5,
        scene,
        seed: args.seed,
    };

    let schemes: Vec<Box<dyn UploadScheme>> = vec![
        Box::new(DirectUpload::new(&config)),
        Box::new(SmartEye::new(&config)),
        Box::new(Mrc::new(&config)),
        Box::new(Bees::without_adaptation(&config)),
        Box::new(Bees::adaptive(&config)),
    ];
    // With `--trace-out`, every scheme's lifetime reports into one JSONL
    // trace; without it the disabled handle keeps the run allocation-free
    // and its output byte-identical to the untraced path.
    let telemetry = match &args.trace_out {
        Some(path) => {
            let file = std::fs::File::create(path)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
            Telemetry::with_sinks(vec![std::sync::Arc::new(JsonlSink::new(
                std::io::BufWriter::new(file),
            ))])
        }
        None => Telemetry::disabled(),
    };
    let runs = schemes
        .iter()
        .map(|s| {
            run_lifetime_traced(s.as_ref(), &config, &lt, telemetry.clone())
                .expect("constant trace cannot stall")
        })
        .collect();
    telemetry.flush().expect("trace file write failed");
    Fig9Result { runs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bees_outlasts_the_field() {
        let args = ExpArgs {
            scale: 0.1,
            seed: 61,
            quick: true,
            ..ExpArgs::default()
        };
        let r = run(&args);
        assert_eq!(r.runs.len(), 5);
        let life = |i: usize| r.runs[i].lifetime_s;
        // BEES lives longest; Direct Upload shortest or tied.
        assert!(life(4) >= life(0), "BEES {} vs Direct {}", life(4), life(0));
        assert!(
            life(4) >= life(3),
            "BEES {} vs BEES-EA {}",
            life(4),
            life(3)
        );
        assert!(
            life(3) >= life(0),
            "BEES-EA {} vs Direct {}",
            life(3),
            life(0)
        );
        // Discharge curves are monotone.
        for run in &r.runs {
            for w in run.samples.windows(2) {
                assert!(w[1].ebat <= w[0].ebat + 1e-9);
            }
        }
    }
}
