//! Fig. 6: similarity-detection precision of SIFT, PCA-SIFT, and
//! BEES(Ebat) — BEES' ORB running on bitmaps compressed by the EAC
//! proportion for the given battery level — normalized to SIFT.
//!
//! Paper shape: SIFT highest; PCA-SIFT close behind; BEES(100) above 90 %
//! of SIFT; BEES degrades only gently as Ebat falls (BEES(10) still above
//! ~85 %).

use crate::args::ExpArgs;
use crate::experiments::top4_precision;
use crate::table::{f3, Table};
use bees_core::BeesConfig;
use bees_datasets::{kentucky_like, SceneConfig};
use bees_energy::AdaptiveScheme;
use bees_features::orb::Orb;
use bees_features::pca::PcaSift;
use bees_features::sift::Sift;
use bees_features::FeatureExtractor;
use bees_image::resize;

/// Precision of one scheme at one query-count setting.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecisionRow {
    /// Scheme label ("SIFT", "PCA-SIFT", "BEES(100)", ...).
    pub label: String,
    /// Absolute top-4 precision.
    pub precision: f64,
    /// Precision normalized to SIFT's.
    pub normalized: f64,
}

/// Full experiment result.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// Number of groups (= number of queries).
    pub n_queries: usize,
    /// Rows in paper order.
    pub rows: Vec<PrecisionRow>,
}

impl Fig6Result {
    /// Prints the paper-style table.
    pub fn print(&self) {
        println!(
            "\n== Fig. 6: normalized precision ({} queries) ==",
            self.n_queries
        );
        let mut t = Table::new(vec!["scheme", "precision", "normalized to SIFT"]);
        for r in &self.rows {
            t.row(vec![r.label.clone(), f3(r.precision), f3(r.normalized)]);
        }
        t.print();
    }
}

/// Runs the comparison.
pub fn run(args: &ExpArgs) -> Fig6Result {
    let config = BeesConfig::default();
    let n_groups = args.scaled(12, 3);
    let groups = kentucky_like(args.seed, n_groups, SceneConfig::default());

    let mut rows = Vec::new();

    let sift = Sift::new(config.pca_sift.sift);
    let p_sift = top4_precision(
        &groups,
        &config.similarity,
        |g| sift.extract(g),
        |g| sift.extract(g),
    );
    rows.push(PrecisionRow {
        label: "SIFT".into(),
        precision: p_sift,
        normalized: 1.0,
    });

    let pca = PcaSift::with_seeded_basis(config.pca_sift, config.pca_basis_seed);
    let p_pca = top4_precision(
        &groups,
        &config.similarity,
        |g| pca.extract(g),
        |g| pca.extract(g),
    );
    rows.push(PrecisionRow {
        label: "PCA-SIFT".into(),
        precision: p_pca,
        normalized: p_pca / p_sift.max(1e-9),
    });

    let orb = Orb::new(config.orb);
    for ebat_pct in [100u32, 70, 40, 10] {
        let c = config.eac.value(ebat_pct as f64 / 100.0);
        let p = top4_precision(
            &groups,
            &config.similarity,
            |g| orb.extract(g),
            |g| {
                let compressed = resize::compress_bitmap(g, c).expect("valid proportion");
                orb.extract(&compressed)
            },
        );
        rows.push(PrecisionRow {
            label: format!("BEES({ebat_pct})"),
            precision: p,
            normalized: p / p_sift.max(1e-9),
        });
    }

    Fig6Result {
        n_queries: n_groups,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bees_precision_tracks_paper_shape() {
        let args = ExpArgs {
            scale: 0.4,
            seed: 21,
            quick: false,
            ..ExpArgs::default()
        };
        let r = run(&args);
        assert_eq!(r.rows.len(), 6);
        let by_label = |l: &str| {
            r.rows
                .iter()
                .find(|row| row.label == l)
                .unwrap_or_else(|| panic!("{l} missing"))
        };
        let sift = by_label("SIFT");
        assert!(sift.precision > 0.5, "SIFT precision {}", sift.precision);
        // BEES(100) runs on uncompressed bitmaps: strong precision.
        let b100 = by_label("BEES(100)");
        assert!(
            b100.normalized > 0.7,
            "BEES(100) normalized {}",
            b100.normalized
        );
        // BEES(10) compresses by ~0.36 and loses only modest precision.
        let b10 = by_label("BEES(10)");
        assert!(
            b10.normalized > 0.5,
            "BEES(10) normalized {}",
            b10.normalized
        );
        assert!(b10.precision <= b100.precision + 0.1);
    }
}
