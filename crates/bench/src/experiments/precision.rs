//! Shared top-4 precision measurement on Kentucky-like groups.
//!
//! Mirrors the paper's protocol: every group image is indexed, one image
//! per group is re-queried, and precision is the average fraction of top-4
//! results that belong to the query's own group.

use bees_datasets::KentuckyGroup;
use bees_features::similarity::SimilarityConfig;
use bees_features::ImageFeatures;
use bees_image::GrayImage;
use bees_index::{FeatureIndex, ImageId, LinearIndex};

/// Measures top-4 precision.
///
/// `index_extract` produces the features stored on the server (full-size
/// extraction); `query_extract` produces the client's query features (may
/// be approximate, e.g. from a compressed bitmap). Returns the mean
/// fraction of top-4 hits that are in the query's group.
pub fn top4_precision<FI, FQ>(
    groups: &[KentuckyGroup],
    similarity: &SimilarityConfig,
    mut index_extract: FI,
    mut query_extract: FQ,
) -> f64
where
    FI: FnMut(&GrayImage) -> ImageFeatures,
    FQ: FnMut(&GrayImage) -> ImageFeatures,
{
    assert!(!groups.is_empty(), "need at least one group");
    let mut index = LinearIndex::new(*similarity);
    for (g, group) in groups.iter().enumerate() {
        for (k, img) in group.images.iter().enumerate() {
            let id = ImageId((g * KentuckyGroup::GROUP_SIZE + k) as u64);
            index.insert(id, index_extract(&img.to_gray()));
        }
    }
    let mut total = 0.0;
    for (g, group) in groups.iter().enumerate() {
        let query = query_extract(&group.images[0].to_gray());
        let hits = index.top_k(&query, 4);
        let own = hits
            .iter()
            .filter(|h| (h.id.0 as usize) / KentuckyGroup::GROUP_SIZE == g)
            .count();
        total += own as f64 / 4.0;
    }
    total / groups.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bees_datasets::{kentucky_like, SceneConfig};
    use bees_features::orb::Orb;
    use bees_features::FeatureExtractor;

    #[test]
    fn uncompressed_orb_precision_is_high() {
        let groups = kentucky_like(
            3,
            4,
            SceneConfig {
                width: 128,
                height: 96,
                n_shapes: 14,
                texture_amp: 8.0,
            },
        );
        let orb = Orb::default();
        let p = top4_precision(
            &groups,
            &SimilarityConfig::default(),
            |g| orb.extract(g),
            |g| orb.extract(g),
        );
        assert!(p > 0.7, "precision {p}");
    }
}
