//! Fleet-scale server: devices × shards sweep over the deterministic
//! multi-device fleet session.
//!
//! For each fleet size the sweep runs the same workload against 1, 2, and
//! 4 index shards and reports ingest/query throughput plus the
//! redundancy-elimination ratio. The acceptance property is printed (and
//! asserted in the tests): the *report* — uploads, verdicts, ratio — is
//! byte-identical across shard counts; only the wall clock moves.

use crate::args::ExpArgs;
use crate::table::{pct, Table};
use bees_core::schemes::Bees;
use bees_core::sessions::{run_fleet, FleetConfig, FleetReport};
use bees_core::{BeesConfig, IndexBackend};
use bees_datasets::SceneConfig;
use bees_net::BandwidthTrace;
use std::time::Instant;

/// One cell of the devices × shards sweep.
#[derive(Debug, Clone)]
pub struct FleetCell {
    /// Fleet size.
    pub devices: usize,
    /// Server index shards.
    pub shards: usize,
    /// The deterministic fleet report (identical across `shards`).
    pub report: FleetReport,
    /// Wall-clock seconds for the whole run (display only — never part of
    /// the deterministic report).
    pub wall_s: f64,
    /// Server queries answered per wall-clock second.
    pub queries_per_s: f64,
}

/// Full sweep result.
#[derive(Debug, Clone)]
pub struct FleetScalingResult {
    /// All cells, devices-major then shards-minor.
    pub cells: Vec<FleetCell>,
}

impl FleetScalingResult {
    /// Whether, for every fleet size, all shard counts produced
    /// byte-identical reports — the sweep's correctness property.
    pub fn reports_agree_across_shards(&self) -> bool {
        self.cells.iter().all(|c| {
            let base = self
                .cells
                .iter()
                .find(|b| b.devices == c.devices)
                .expect("cell exists");
            base.report.to_json() == c.report.to_json()
        })
    }

    /// Prints the sweep table.
    pub fn print(&self) {
        println!("\n== Fleet scaling: devices x index shards ==");
        let mut t = Table::new(vec![
            "devices",
            "shards",
            "captured",
            "uploaded",
            "elimination",
            "queries",
            "wall s",
            "queries/s",
        ]);
        for c in &self.cells {
            t.row(vec![
                c.devices.to_string(),
                c.shards.to_string(),
                c.report.images_captured.to_string(),
                c.report.images_uploaded.to_string(),
                pct(c.report.redundancy_elimination),
                c.report.server_queries.to_string(),
                format!("{:.2}", c.wall_s),
                format!("{:.0}", c.queries_per_s),
            ]);
        }
        t.print();
        println!(
            "reports byte-identical across shard counts: {}",
            self.reports_agree_across_shards()
        );
    }
}

fn fleet_for(args: &ExpArgs, devices: usize) -> FleetConfig {
    FleetConfig {
        n_devices: devices,
        rounds: args.scaled(3, 2),
        group_size: args.scaled(6, 3),
        shared_per_group: args.scaled(3, 2),
        interval_s: 30.0,
        scene: SceneConfig {
            width: 96,
            height: 72,
            n_shapes: 8,
            texture_amp: 8.0,
        },
        seed: args.seed,
        pulldown: None,
    }
}

/// Runs the devices × shards sweep (BEES scheme, MIH backend).
pub fn run(args: &ExpArgs) -> FleetScalingResult {
    let device_sweep = [args.scaled(4, 2), args.scaled(8, 3)];
    let mut cells = Vec::new();
    for &devices in &device_sweep {
        let fleet = fleet_for(args, devices);
        for shards in [1usize, 2, 4] {
            let config = BeesConfig {
                trace: BandwidthTrace::constant(256_000.0).expect("constant trace is valid"),
                index_backend: IndexBackend::Mih,
                server_shards: shards,
                ..BeesConfig::default()
            };
            let start = Instant::now();
            let report = run_fleet(&Bees::adaptive(&config), &config, &fleet)
                .expect("constant trace cannot stall");
            let wall_s = start.elapsed().as_secs_f64();
            cells.push(FleetCell {
                devices,
                shards,
                queries_per_s: report.server_queries as f64 / wall_s.max(1e-9),
                report,
                wall_s,
            });
        }
    }
    let result = FleetScalingResult { cells };
    if let Some(path) = &args.json_out {
        let mut lines = String::new();
        for c in &result.cells {
            lines.push_str(&format!(
                "{{\"devices\":{},\"shards\":{},\"report\":{}}}\n",
                c.devices,
                c.shards,
                c.report.to_json()
            ));
        }
        if let Err(e) = std::fs::write(path, lines) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_shard_invariant() {
        let args = ExpArgs {
            scale: 0.1,
            seed: 7,
            quick: true,
            ..ExpArgs::default()
        };
        let r = run(&args);
        // 2 fleet sizes x 3 shard counts.
        assert_eq!(r.cells.len(), 6);
        assert!(r.reports_agree_across_shards());
        // The shared scene pool guarantees redundancy to eliminate.
        for c in &r.cells {
            assert!(c.report.redundancy_elimination > 0.0, "cell {c:?}");
            assert!(c.report.server_queries > 0);
        }
    }
}
