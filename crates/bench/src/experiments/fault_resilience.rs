//! Robustness experiment: every scheme on a faulty disaster channel.
//!
//! Layers a seeded storm [`FaultModel`] (blackout windows, per-attempt
//! drops, and CRC-caught chunk corruption) on the fluctuating 0–512 Kbps
//! WiFi trace and runs all six schemes through the resumable transfer
//! stack. The table shows how each scheme spends the faulty channel:
//! images delivered at full quality, salvaged as partial scan prefixes
//! (BEES' progressive encoding), delivered degraded (thumbnail fallback),
//! deferred outright, plus the retry count and the radio energy wasted on
//! attempts whose bytes were cut.
//!
//! Every scheme is also re-run with `salvage_partials` off at the same
//! seeds — the pre-salvage ladder — so the table's last column shows how
//! many joules salvage reclaims from the wasted bucket. `--json-out`
//! emits the wasted/salvaged trajectory for `scripts/perf_check.py`.
//!
//! Not a paper figure — the paper assumes the disaster WiFi stays up — but
//! the scenario it motivates (§I) is exactly the one where it does not.

use crate::args::ExpArgs;
use crate::perf::{write_json_lines, Metric};
use crate::table::{f1, Table};
use bees_core::schemes::{make_scheme, BatchCtx, UploadScheme};
use bees_core::{BatchReport, BeesConfig, Client, Server};
use bees_datasets::{disaster_batch, SceneConfig};
use bees_energy::Battery;
use bees_net::{BandwidthTrace, FaultModel};

/// One report per scheme, in the run order of the table.
#[derive(Debug, Clone)]
pub struct FaultResilienceResult {
    /// Direct, PhotoNet-like, SmartEye, MRC, BEES-EA, BEES — with the
    /// salvage rung enabled (the default ladder).
    pub reports: Vec<BatchReport>,
    /// The same schemes at the same seeds with `salvage_partials` off:
    /// the pre-salvage ladder whose wasted bucket the salvage rung is
    /// measured against. Identical to `reports` for schemes that never
    /// salvage.
    pub presalvage: Vec<BatchReport>,
}

impl FaultResilienceResult {
    /// Prints the per-scheme fault-handling breakdown.
    pub fn print(&self) {
        println!(
            "\n== Fault resilience: disaster channel with blackouts, drops, and corruption =="
        );
        let mut t = Table::new(vec![
            "scheme",
            "uploaded",
            "salvaged",
            "ssim",
            "degraded",
            "deferred",
            "skipped",
            "attempts",
            "corrupt",
            "wasted (J)",
            "reclaimed (J)",
            "delay (s)",
        ]);
        for (r, pre) in self.reports.iter().zip(&self.presalvage) {
            t.row(vec![
                r.scheme.clone(),
                r.uploaded_images.to_string(),
                r.salvaged_images.to_string(),
                if r.salvaged_images > 0 {
                    format!("{:.2}", r.mean_salvage_ssim())
                } else {
                    "-".to_string()
                },
                r.degraded_images.to_string(),
                r.deferred_images.to_string(),
                (r.skipped_cross_batch + r.skipped_in_batch).to_string(),
                r.transfer_attempts.to_string(),
                r.corrupt_chunks_detected.to_string(),
                f1(r.wasted_energy()),
                f1(pre.wasted_energy() - r.wasted_energy()),
                f1(r.total_delay_s),
            ]);
        }
        t.print();
    }

    /// The perf-trajectory lines `--json-out` writes: per scheme, the
    /// wasted joules (lower is better) plus — where the scheme salvages —
    /// the salvage yield (higher is better).
    pub fn metrics(&self) -> Vec<Metric> {
        let mut out = Vec::new();
        for (r, pre) in self.reports.iter().zip(&self.presalvage) {
            let case = slug(&r.scheme);
            out.push(Metric::lower(
                "fault_resilience",
                &case,
                "wasted_joules",
                r.wasted_energy(),
            ));
            if r.salvaged_images > 0 {
                out.push(Metric::new(
                    "fault_resilience",
                    &case,
                    "salvaged_images",
                    r.salvaged_images as f64,
                ));
                out.push(Metric::new(
                    "fault_resilience",
                    &case,
                    "salvage_ssim_mean",
                    r.mean_salvage_ssim(),
                ));
                out.push(Metric::new(
                    "fault_resilience",
                    &case,
                    "salvage_reclaimed_joules",
                    pre.wasted_energy() - r.wasted_energy(),
                ));
            }
        }
        out
    }
}

/// Lowercase, alphanumeric-only case slug ("PhotoNet-like" -> "photonet_like").
fn slug(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

fn storm_config(args: &ExpArgs) -> BeesConfig {
    let mut config = BeesConfig {
        trace: BandwidthTrace::disaster_wifi(args.seed ^ 0xFA11),
        ..BeesConfig::default()
    };
    // Harsher than the `disaster` preset: a quick-scale batch finishes in
    // seconds of simulated time, so the storm needs short dark windows and
    // a high per-attempt drop rate for faults to show up in the table. The
    // corruption layer bit-flips ~12% of transport chunks; every one must
    // be caught by the CRC framing and re-requested.
    config.fault = FaultModel::new(args.seed.wrapping_add(0xFA11), 0.6, 0.5, 8.0, 3.0)
        .and_then(|f| f.with_corruption(0.12))
        .expect("constants are valid");
    // A tight retry budget plus the high drop rate makes some transfers
    // exhaust their attempts mid-payload — the case the salvage rung
    // exists for. 1 KiB transport chunks keep banked prefixes
    // scan-granular relative to the few-KiB progressive payloads, so cut
    // transfers have whole scans to salvage.
    config.retry.max_attempts = 3;
    config.retry.chunk_bytes = 1024;
    // A large battery keeps the focus on channel faults rather than on
    // battery exhaustion (fig9_lifetime covers that axis).
    config.battery = Battery::from_joules(500_000.0);
    config
}

/// Runs all six schemes on the same batch over the same faulty channel,
/// once with the salvage rung and once with the pre-salvage ladder.
pub fn run(args: &ExpArgs) -> FaultResilienceResult {
    let batch_size = args.scaled(24, 6);
    let in_batch = (batch_size / 8).max(1);
    let data = disaster_batch(
        args.seed,
        batch_size,
        in_batch,
        0.25,
        SceneConfig::default(),
    );

    let mut passes = Vec::with_capacity(2);
    for salvage in [true, false] {
        let mut config = storm_config(args);
        config.salvage_partials = salvage;
        // `SchemeKind::ALL` order unless narrowed with `--schemes`.
        let schemes: Vec<Box<dyn UploadScheme>> = args
            .scheme_roster()
            .iter()
            .map(|&k| make_scheme(k, &config))
            .collect();
        let mut reports = Vec::with_capacity(schemes.len());
        for scheme in &schemes {
            let mut server = Server::try_new(&config).expect("config is valid");
            let mut client = Client::try_new(0, &config).expect("fault/battery knobs are valid");
            scheme.preload_server(&mut server, &data.server_preload);
            let report = scheme
                .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
                .expect("faulty transfers defer instead of erroring");
            reports.push(report);
        }
        passes.push(reports);
    }
    let presalvage = passes.pop().expect("two passes ran");
    let reports = passes.pop().expect("two passes ran");
    let result = FaultResilienceResult {
        reports,
        presalvage,
    };
    if let Some(path) = &args.json_out {
        write_json_lines(path, &result.metrics());
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_conserving_under_faults() {
        let args = ExpArgs {
            scale: 0.3,
            seed: 77,
            quick: true,
            ..ExpArgs::default()
        };
        let r = run(&args);
        assert_eq!(r.reports.len(), 6);
        assert_eq!(r.presalvage.len(), 6);

        // Byte-identical on a re-run: every fault, retry, backoff, and
        // corruption coin is derived from seeds, never from wall-clock or
        // shared RNG state.
        let r2 = run(&args);
        assert_eq!(r.reports, r2.reports);
        assert_eq!(r.presalvage, r2.presalvage);

        for rep in r.reports.iter().chain(&r.presalvage) {
            // The battery is sized so faults, not exhaustion, shape the run.
            assert!(!rep.exhausted, "{}: unexpectedly exhausted", rep.scheme);
            // Conservation: every batch image is delivered (full,
            // salvaged, or degraded), deferred, or deduplicated away.
            let accounted = rep.uploaded_images
                + rep.salvaged_images
                + rep.degraded_images
                + rep.deferred_images
                + rep.skipped_cross_batch
                + rep.skipped_in_batch;
            assert_eq!(
                accounted, rep.batch_size,
                "{}: images unaccounted for",
                rep.scheme
            );
            // Each delivered or abandoned payload took at least one attempt.
            assert!(
                rep.transfer_attempts
                    >= (rep.uploaded_images + rep.degraded_images + rep.deferred_images) as u64,
                "{}: too few attempts",
                rep.scheme
            );
        }
        // The storm model is aggressive enough that at least one scheme
        // pays a visible retry cost, and the corruption layer is caught by
        // the CRC framing somewhere in the run.
        assert!(
            r.reports.iter().any(|rep| rep.wasted_energy() > 0.0),
            "no wasted energy anywhere despite the storm fault model"
        );
        assert!(
            r.reports.iter().any(|rep| rep.corrupt_chunks_detected > 0),
            "no corrupt chunks detected despite the corruption fault mode"
        );
    }

    #[test]
    fn bees_salvage_reclaims_wasted_joules_at_equal_seeds() {
        let args = ExpArgs {
            scale: 0.3,
            seed: 77,
            quick: true,
            ..ExpArgs::default()
        };
        let r = run(&args);
        let bees = r
            .reports
            .iter()
            .zip(&r.presalvage)
            .find(|(rep, _)| rep.scheme == "BEES")
            .expect("BEES is in the default roster");
        let (on, off) = bees;
        assert!(on.salvaged_images > 0, "no salvage under the storm: {on:?}");
        assert!(
            on.mean_salvage_ssim() > 0.5,
            "salvaged partials too poor: {}",
            on.mean_salvage_ssim()
        );
        assert_eq!(off.salvaged_images, 0, "pre-salvage ladder salvaged");
        assert!(
            on.wasted_energy() < off.wasted_energy(),
            "salvage must strictly shrink waste: {} vs {}",
            on.wasted_energy(),
            off.wasted_energy()
        );
        // Salvage relabels radio joules, it never refunds the battery.
        assert!(on.salvaged_energy() > 0.0);
        let json = crate::perf::to_json_lines(&r.metrics());
        assert!(json.contains("\"dir\":\"lower\""));
        assert!(json.contains("salvage_ssim_mean"));
    }
}
