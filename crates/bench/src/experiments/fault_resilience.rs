//! Robustness experiment: every scheme on a faulty disaster channel.
//!
//! Layers a seeded storm [`FaultModel`] (blackout windows + per-attempt
//! drops) on the fluctuating 0–512 Kbps WiFi trace and runs all six schemes
//! through the resumable transfer stack. The table shows how each scheme
//! spends the faulty channel: images delivered at full quality, delivered
//! degraded (BEES' thumbnail fallback), deferred outright, plus the retry
//! count and the radio energy wasted on attempts whose bytes were cut.
//!
//! Not a paper figure — the paper assumes the disaster WiFi stays up — but
//! the scenario it motivates (§I) is exactly the one where it does not.

use crate::args::ExpArgs;
use crate::table::{f1, Table};
use bees_core::schemes::{make_scheme, BatchCtx, UploadScheme};
use bees_core::{BatchReport, BeesConfig, Client, Server};
use bees_datasets::{disaster_batch, SceneConfig};
use bees_energy::Battery;
use bees_net::{BandwidthTrace, FaultModel};

/// One report per scheme, in the run order of the table.
#[derive(Debug, Clone)]
pub struct FaultResilienceResult {
    /// Direct, PhotoNet-like, SmartEye, MRC, BEES-EA, BEES.
    pub reports: Vec<BatchReport>,
}

impl FaultResilienceResult {
    /// Prints the per-scheme fault-handling breakdown.
    pub fn print(&self) {
        println!("\n== Fault resilience: disaster channel with blackouts and drops ==");
        let mut t = Table::new(vec![
            "scheme",
            "uploaded",
            "degraded",
            "deferred",
            "skipped",
            "attempts",
            "wasted (J)",
            "active (J)",
            "delay (s)",
        ]);
        for r in &self.reports {
            t.row(vec![
                r.scheme.clone(),
                r.uploaded_images.to_string(),
                r.degraded_images.to_string(),
                r.deferred_images.to_string(),
                (r.skipped_cross_batch + r.skipped_in_batch).to_string(),
                r.transfer_attempts.to_string(),
                f1(r.wasted_energy()),
                f1(r.active_energy()),
                f1(r.total_delay_s),
            ]);
        }
        t.print();
    }
}

/// Runs all six schemes on the same batch over the same faulty channel.
pub fn run(args: &ExpArgs) -> FaultResilienceResult {
    let mut config = BeesConfig {
        trace: BandwidthTrace::disaster_wifi(args.seed ^ 0xFA11),
        ..BeesConfig::default()
    };
    // Harsher than the `disaster` preset: a quick-scale batch finishes in
    // seconds of simulated time, so the storm needs short dark windows and
    // a high per-attempt drop rate for faults to show up in the table.
    config.fault = FaultModel::new(args.seed.wrapping_add(0xFA11), 0.35, 0.5, 8.0, 3.0)
        .expect("constants are valid");
    // A large battery keeps the focus on channel faults rather than on
    // battery exhaustion (fig9_lifetime covers that axis).
    config.battery = Battery::from_joules(500_000.0);
    let batch_size = args.scaled(24, 6);
    let in_batch = (batch_size / 8).max(1);
    let data = disaster_batch(
        args.seed,
        batch_size,
        in_batch,
        0.25,
        SceneConfig::default(),
    );

    // `SchemeKind::ALL` order unless narrowed with `--schemes`.
    let schemes: Vec<Box<dyn UploadScheme>> = args
        .scheme_roster()
        .iter()
        .map(|&k| make_scheme(k, &config))
        .collect();
    let mut reports = Vec::with_capacity(schemes.len());
    for scheme in &schemes {
        let mut server = Server::try_new(&config).expect("config is valid");
        let mut client = Client::try_new(0, &config).expect("fault/battery knobs are valid");
        scheme.preload_server(&mut server, &data.server_preload);
        let report = scheme
            .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
            .expect("faulty transfers defer instead of erroring");
        reports.push(report);
    }
    FaultResilienceResult { reports }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_conserving_under_faults() {
        let args = ExpArgs {
            scale: 0.3,
            seed: 77,
            quick: true,
            ..ExpArgs::default()
        };
        let r = run(&args);
        assert_eq!(r.reports.len(), 6);

        // Byte-identical on a re-run: every fault, retry, and backoff is
        // derived from seeds, never from wall-clock or shared RNG state.
        let r2 = run(&args);
        assert_eq!(r.reports, r2.reports);

        for rep in &r.reports {
            // The battery is sized so faults, not exhaustion, shape the run.
            assert!(!rep.exhausted, "{}: unexpectedly exhausted", rep.scheme);
            // Conservation: every batch image is delivered (full or
            // degraded), deferred, or deduplicated away.
            let accounted = rep.uploaded_images
                + rep.degraded_images
                + rep.deferred_images
                + rep.skipped_cross_batch
                + rep.skipped_in_batch;
            assert_eq!(
                accounted, rep.batch_size,
                "{}: images unaccounted for",
                rep.scheme
            );
            // Each delivered or abandoned payload took at least one attempt.
            assert!(
                rep.transfer_attempts
                    >= (rep.uploaded_images + rep.degraded_images + rep.deferred_images) as u64,
                "{}: too few attempts",
                rep.scheme
            );
        }
        // The storm model is aggressive enough that at least one scheme
        // pays a visible retry cost.
        assert!(
            r.reports.iter().any(|rep| rep.wasted_energy() > 0.0),
            "no wasted energy anywhere despite the storm fault model"
        );
    }
}
