//! Deterministic-runtime scaling: matcher throughput across thread counts.
//!
//! Runs the block matcher's row fan-out (the exact shape
//! `match_binary_blocks` uses) under `bees_runtime` thread counts 1/2/4/8
//! and reports throughput plus speedup over the single-thread run. The
//! correctness half of the story — results byte-identical at every thread
//! count — is asserted on every run, not just in the tests: the fixed
//! chunking of the deterministic runtime means thread count may only move
//! the wall clock.

use crate::args::ExpArgs;
use crate::perf::{write_json_lines, Metric};
use crate::table::Table;
use bees_features::matcher::{match_binary_blocks, MatchConfig};
use bees_features::{BinaryDescriptor, DescriptorBlock};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::time::Instant;

/// One thread count's measurement.
#[derive(Debug, Clone)]
pub struct RuntimeCell {
    /// `bees_runtime` thread count.
    pub threads: usize,
    /// Query rows matched per second.
    pub rows_per_s: f64,
    /// Speedup over the 1-thread cell.
    pub speedup: f64,
}

/// Full thread sweep.
#[derive(Debug, Clone)]
pub struct RuntimeScalingResult {
    /// One cell per thread count, ascending.
    pub cells: Vec<RuntimeCell>,
    /// Whether every thread count produced byte-identical match lists.
    pub deterministic: bool,
}

impl RuntimeScalingResult {
    /// The perf-trajectory metric lines for `--json-out`.
    pub fn metrics(&self) -> Vec<Metric> {
        let mut out = Vec::new();
        for c in &self.cells {
            let case = format!("threads{}", c.threads);
            out.push(Metric::new(
                "runtime_scaling",
                &case,
                "rows_per_s",
                c.rows_per_s,
            ));
            out.push(Metric::new("runtime_scaling", &case, "speedup", c.speedup));
        }
        out
    }

    /// Prints the sweep table.
    pub fn print(&self) {
        println!("\n== Runtime scaling: matcher rows/s by thread count ==");
        let mut t = Table::new(vec!["threads", "rows/s", "speedup"]);
        for c in &self.cells {
            t.row(vec![
                c.threads.to_string(),
                format!("{:.0}", c.rows_per_s),
                format!("{:.2}x", c.speedup),
            ]);
        }
        t.print();
        println!("match lists byte-identical across thread counts: {}", {
            self.deterministic
        });
    }
}

fn random_block(rng: &mut ChaCha8Rng, n: usize) -> DescriptorBlock {
    let descs: Vec<BinaryDescriptor> = (0..n)
        .map(|_| {
            let mut bytes = [0u8; 32];
            rng.fill(&mut bytes);
            BinaryDescriptor::from_bytes(bytes)
        })
        .collect();
    DescriptorBlock::from_descriptors(&descs)
}

/// Runs the thread sweep. Restores the ambient thread count before
/// returning (panic-safe enough for a bench binary).
pub fn run(args: &ExpArgs) -> RuntimeScalingResult {
    let n_query = args.scaled(256, 32);
    let n_train = args.scaled(2_000, 200);
    let reps = if args.quick { 1 } else { 3 };
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
    let query = random_block(&mut rng, n_query);
    let train = random_block(&mut rng, n_train);
    let config = MatchConfig::default();

    let mut cells: Vec<RuntimeCell> = Vec::new();
    let mut reference: Option<Vec<bees_features::matcher::FeatureMatch>> = None;
    let mut deterministic = true;
    for threads in [1usize, 2, 4, 8] {
        bees_runtime::set_threads(threads);
        // Warmup + correctness capture.
        let matches = match_binary_blocks(&query, &train, &config);
        match &reference {
            None => reference = Some(matches),
            Some(r) => deterministic &= *r == matches,
        }
        let t = Instant::now();
        for _ in 0..reps {
            black_box(match_binary_blocks(&query, &train, &config));
        }
        let elapsed = t.elapsed().as_secs_f64();
        let rows_per_s = (n_query * reps) as f64 / elapsed.max(1e-12);
        let speedup = cells
            .first()
            .map(|c: &RuntimeCell| rows_per_s / c.rows_per_s)
            .unwrap_or(1.0);
        cells.push(RuntimeCell {
            threads,
            rows_per_s,
            speedup,
        });
    }
    bees_runtime::set_threads(0);
    assert!(
        deterministic,
        "thread count changed the match list — determinism violated"
    );

    let result = RuntimeScalingResult {
        cells,
        deterministic,
    };
    if let Some(path) = &args.json_out {
        write_json_lines(path, &result.metrics());
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_sweep_is_deterministic() {
        let args = ExpArgs {
            scale: 0.05,
            quick: true,
            seed: 5,
            ..ExpArgs::default()
        };
        // `run` itself asserts byte-identical match lists per thread count.
        let r = run(&args);
        assert!(r.deterministic);
        assert_eq!(r.cells.len(), 4);
        assert_eq!(r.cells[0].threads, 1);
        assert!((r.cells[0].speedup - 1.0).abs() < 1e-9);
        for c in &r.cells {
            assert!(c.rows_per_s > 0.0, "cell {c:?}");
        }
        assert_eq!(r.metrics().len(), 8);
    }
}
