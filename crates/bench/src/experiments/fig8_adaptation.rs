//! Fig. 8: energy savings from energy-aware adaptation — BEES' per-category
//! energy (feature extraction, feature upload, image upload) for the same
//! batch at remaining-energy levels 100/70/40/10 %.
//!
//! Paper shape: total energy, extraction energy, and image-upload energy
//! all fall as `Ebat` falls; feature-upload energy stays small throughout
//! ("the energy overhead of uploading features is small, due to the
//! lightweight ORB features").

use crate::args::ExpArgs;
use crate::table::{f1, Table};
use bees_core::schemes::{BatchCtx, Bees, UploadScheme};
use bees_core::{BatchReport, BeesConfig, Client, Server};
use bees_datasets::{disaster_batch, SceneConfig};
use bees_energy::EnergyCategory;
use bees_net::BandwidthTrace;

/// BEES' breakdown at one battery level.
#[derive(Debug, Clone)]
pub struct AdaptationPoint {
    /// Remaining energy percentage (100, 70, 40, 10).
    pub ebat_pct: u32,
    /// The batch report.
    pub report: BatchReport,
}

/// Full experiment result.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// One point per battery level.
    pub points: Vec<AdaptationPoint>,
}

impl Fig8Result {
    /// Prints the paper-style breakdown.
    pub fn print(&self) {
        println!("\n== Fig. 8: BEES energy breakdown vs remaining energy ==");
        let mut t = Table::new(vec![
            "Ebat",
            "extract (J)",
            "upload features (J)",
            "upload images (J)",
            "compress (J)",
            "total (J)",
        ]);
        for p in &self.points {
            let e = &p.report.energy;
            t.row(vec![
                format!("{}%", p.ebat_pct),
                f1(e.get(EnergyCategory::FeatureExtraction)),
                f1(e.get(EnergyCategory::FeatureUpload)),
                f1(e.get(EnergyCategory::ImageUpload)),
                f1(e.get(EnergyCategory::Compression)),
                f1(p.report.active_energy()),
            ]);
        }
        t.print();
    }
}

/// Runs BEES on the same batch at four staged battery levels.
pub fn run(args: &ExpArgs) -> Fig8Result {
    let config = BeesConfig {
        trace: BandwidthTrace::constant(256_000.0).expect("constant trace is valid"),
        ..BeesConfig::default()
    };
    let batch_size = args.scaled(100, 8);
    let in_batch = (batch_size / 10).max(1);
    // Paper: 25% cross-batch redundancy for each upload.
    let data = disaster_batch(
        args.seed,
        batch_size,
        in_batch,
        0.25,
        SceneConfig::default(),
    );
    let scheme = Bees::adaptive(&config);

    let mut points = Vec::new();
    for ebat_pct in [100u32, 70, 40, 10] {
        let mut server = Server::try_new(&config).expect("config is valid");
        let mut client = Client::try_new(0, &config).expect("default config is valid");
        scheme.preload_server(&mut server, &data.server_preload);
        client.battery_mut().set_fraction(ebat_pct as f64 / 100.0);
        let report = scheme
            .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
            .expect("constant trace cannot stall");
        points.push(AdaptationPoint { ebat_pct, report });
    }
    Fig8Result { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_falls_as_battery_falls() {
        let args = ExpArgs {
            scale: 0.12,
            seed: 51,
            quick: true,
            ..ExpArgs::default()
        };
        let r = run(&args);
        assert_eq!(r.points.len(), 4);
        let totals: Vec<f64> = r.points.iter().map(|p| p.report.active_energy()).collect();
        // 100% -> 10%: total must fall substantially.
        assert!(
            totals[3] < totals[0] * 0.9,
            "totals {totals:?} should fall with Ebat"
        );
        // Image upload energy falls (resolution compression kicks in).
        let img = |i: usize| r.points[i].report.energy.get(EnergyCategory::ImageUpload);
        assert!(img(3) < img(0), "image upload {} vs {}", img(3), img(0));
        // Feature upload is a minor share at full battery and roughly
        // constant across levels (ORB payloads do not adapt; the paper's
        // "energy overhead of uploading features is small").
        let fu: Vec<f64> = r
            .points
            .iter()
            .map(|p| p.report.energy.get(EnergyCategory::FeatureUpload))
            .collect();
        assert!(
            fu[0] < 0.5 * r.points[0].report.active_energy(),
            "feature upload {} should be a minor share at full battery",
            fu[0]
        );
        let (lo, hi) = fu
            .iter()
            .fold((f64::MAX, 0.0f64), |(l, h), &v| (l.min(v), h.max(v)));
        assert!(
            hi / lo.max(1e-12) < 1.5,
            "feature upload should stay flat: {fu:?}"
        );
    }
}
