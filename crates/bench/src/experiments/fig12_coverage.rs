//! Fig. 12: situation-awareness coverage — unique geotagged locations the
//! server receives from a fleet of phones before their batteries die,
//! Direct Upload vs BEES.
//!
//! Paper shape: BEES uploads moderately more images but covers far more
//! *unique locations* (+97 % in the paper) because it spends no energy on
//! redundant photos of popular spots.

use crate::args::ExpArgs;
use crate::table::{pct, Table};
use bees_core::schemes::{Bees, DirectUpload};
use bees_core::sessions::{run_coverage, CoverageConfig, CoverageResult};
use bees_core::BeesConfig;
use bees_datasets::ParisConfig;
use bees_energy::Battery;
use bees_net::BandwidthTrace;

/// Full experiment result.
#[derive(Debug, Clone)]
pub struct Fig12Result {
    /// Direct Upload's run.
    pub direct: CoverageResult,
    /// BEES' run.
    pub bees: CoverageResult,
}

impl Fig12Result {
    /// Prints the paper-style comparison.
    pub fn print(&self) {
        println!("\n== Fig. 12: coverage (unique locations received) ==");
        let mut t = Table::new(vec![
            "scheme",
            "images uploaded",
            "unique locations",
            "corpus locations",
        ]);
        for r in [&self.direct, &self.bees] {
            t.row(vec![
                r.scheme.clone(),
                r.images_received.to_string(),
                r.unique_locations.to_string(),
                r.corpus_locations.to_string(),
            ]);
        }
        t.print();
        let d = self.direct.unique_locations.max(1) as f64;
        println!(
            "BEES uploads {} vs {} images and covers {} more unique locations",
            self.bees.images_received,
            self.direct.images_received,
            pct(self.bees.unique_locations as f64 / d - 1.0)
        );
    }
}

/// Runs the fleet session for both schemes.
pub fn run(args: &ExpArgs) -> Fig12Result {
    let mut config = BeesConfig {
        trace: BandwidthTrace::constant(256_000.0).expect("constant trace is valid"),
        ..BeesConfig::default()
    };

    let n_phones = args.scaled(10, 2);
    let n_images = args.scaled(1200, 60);
    let group_size = args.scaled(20, 3);
    let scene = bees_datasets::SceneConfig::default();
    // As in the paper's setup, a Direct Upload group nearly fills the
    // interval (40 x ~22 s of a 20-minute slot), so transmission energy is
    // a first-class cost, not a rounding error next to the screen.
    let probe = bees_datasets::Scene::new(args.seed ^ 0xF112, scene)
        .render(&bees_datasets::ViewJitter::identity());
    let camera_bytes = bees_image::codec::encoded_rgb_size(&probe, config.camera_quality)
        .expect("valid camera quality") as f64;
    let upload_s = camera_bytes * 8.0 / 256_000.0;
    let interval_s = (group_size as f64 * upload_s * 1.35).max(10.0);
    // Budget each phone about a third of the intervals it would need to
    // drain its whole slice with Direct Upload, so batteries are the
    // binding constraint (as in the paper).
    let per_phone = n_images / n_phones;
    let intervals_needed = (per_phone as f64 / group_size as f64).ceil();
    let per_interval = interval_s * config.energy.idle_watts
        + group_size as f64 * upload_s * config.energy.radio_tx_watts;
    config.battery = Battery::from_joules(per_interval * intervals_needed / 3.0);

    let cov = CoverageConfig {
        n_phones,
        group_size,
        interval_s,
        paris: ParisConfig {
            n_locations: (n_images / 3).max(4),
            n_images,
            zipf_s: 1.0,
            scene,
            ..ParisConfig::default()
        },
        seed: args.seed,
    };

    let direct = run_coverage(&DirectUpload::new(&config), &config, &cov)
        .expect("constant trace cannot stall");
    let bees =
        run_coverage(&Bees::adaptive(&config), &config, &cov).expect("constant trace cannot stall");
    Fig12Result { direct, bees }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bees_covers_more_locations() {
        let args = ExpArgs {
            scale: 0.1,
            seed: 81,
            quick: true,
            ..ExpArgs::default()
        };
        let r = run(&args);
        // Both are battery-limited.
        assert!(r.direct.images_received < r.direct.corpus_images);
        // The headline: BEES covers at least as many unique locations.
        assert!(
            r.bees.unique_locations >= r.direct.unique_locations,
            "BEES {} vs Direct {}",
            r.bees.unique_locations,
            r.direct.unique_locations
        );
    }
}
