//! Server-side query throughput across index backends.
//!
//! Builds the same random image corpus (near-duplicate pairs plus
//! distractors) into each backend — exact linear scan, MIH, and MIH
//! sharded 4 ways — and measures sustained `query_with_scratch` throughput
//! with one warmed [`QueryScratch`] per backend, exactly how the server
//! runs it. Backends answer from the same corpus, so cross-backend hit
//! counts double as a sanity check (MIH may only miss, never fabricate).

use crate::args::ExpArgs;
use crate::perf::{write_json_lines, Metric};
use crate::table::Table;
use bees_features::descriptor::{BinaryDescriptor, Descriptors};
use bees_features::similarity::SimilarityConfig;
use bees_features::{ImageFeatures, Keypoint};
use bees_index::{FeatureIndex, ImageId, LinearIndex, MihIndex, Query, QueryScratch, ShardedIndex};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::time::Instant;

/// One backend's measurement.
#[derive(Debug, Clone)]
pub struct QueryCell {
    /// Backend label (`linear`, `mih`, `mih_sharded4`).
    pub backend: &'static str,
    /// Indexed images.
    pub images: usize,
    /// Queries issued (across all repetitions).
    pub queries: usize,
    /// Queries answered per second.
    pub queries_per_s: f64,
    /// Queries that returned at least one hit (sanity, not a perf metric).
    pub hits: usize,
}

/// Full backend sweep.
#[derive(Debug, Clone)]
pub struct QueryThroughputResult {
    /// One cell per backend.
    pub cells: Vec<QueryCell>,
}

impl QueryThroughputResult {
    /// The perf-trajectory metric lines for `--json-out`.
    pub fn metrics(&self) -> Vec<Metric> {
        self.cells
            .iter()
            .map(|c| {
                Metric::new(
                    "query_throughput",
                    c.backend,
                    "queries_per_s",
                    c.queries_per_s,
                )
            })
            .collect()
    }

    /// Prints the sweep table.
    pub fn print(&self) {
        println!("\n== Index query throughput (warmed scratch) ==");
        let mut t = Table::new(vec!["backend", "images", "queries", "hits", "queries/s"]);
        for c in &self.cells {
            t.row(vec![
                c.backend.to_string(),
                c.images.to_string(),
                c.queries.to_string(),
                c.hits.to_string(),
                format!("{:.0}", c.queries_per_s),
            ]);
        }
        t.print();
    }
}

fn random_features(rng: &mut ChaCha8Rng, n_descs: usize) -> ImageFeatures {
    let descs: Vec<BinaryDescriptor> = (0..n_descs)
        .map(|_| {
            let mut bytes = [0u8; 32];
            rng.fill(&mut bytes);
            BinaryDescriptor::from_bytes(bytes)
        })
        .collect();
    ImageFeatures {
        keypoints: descs.iter().map(|_| Keypoint::default()).collect(),
        descriptors: Descriptors::Binary(descs),
    }
}

/// Flips `k` bits of each descriptor (a noisy re-observation).
fn perturb(f: &ImageFeatures, rng: &mut ChaCha8Rng, k: usize) -> ImageFeatures {
    let Descriptors::Binary(descs) = &f.descriptors else {
        return f.clone();
    };
    let out: Vec<BinaryDescriptor> = descs
        .iter()
        .map(|d| {
            let mut bytes = *d.as_bytes();
            for _ in 0..k {
                let bit = rng.gen_range(0..256usize);
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
            BinaryDescriptor::from_bytes(bytes)
        })
        .collect();
    ImageFeatures {
        keypoints: f.keypoints.clone(),
        descriptors: Descriptors::Binary(out),
    }
}

fn measure(
    backend: &'static str,
    index: &dyn FeatureIndex,
    probes: &[ImageFeatures],
    reps: usize,
) -> QueryCell {
    let mut scratch = QueryScratch::new();
    // Warmup pass grows the scratch to steady state.
    let mut hits = 0usize;
    for p in probes {
        hits += usize::from(
            !index
                .query_with_scratch(&Query::new(p), &mut scratch)
                .is_empty(),
        );
    }
    let t = Instant::now();
    for _ in 0..reps {
        for p in probes {
            black_box(index.query_with_scratch(&Query::new(p), &mut scratch));
        }
    }
    let elapsed = t.elapsed().as_secs_f64();
    let queries = probes.len() * reps;
    QueryCell {
        backend,
        images: index.len(),
        queries,
        queries_per_s: queries as f64 / elapsed.max(1e-12),
        hits,
    }
}

/// Runs the backend sweep.
pub fn run(args: &ExpArgs) -> QueryThroughputResult {
    let n_images = args.scaled(200, 20);
    let n_descs = args.scaled(40, 8);
    let n_probes = args.scaled(32, 8);
    let reps = if args.quick { 1 } else { 3 };
    let cfg = SimilarityConfig::default();

    let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
    let corpus: Vec<ImageFeatures> = (0..n_images)
        .map(|_| random_features(&mut rng, n_descs))
        .collect();
    let items: Vec<(ImageId, ImageFeatures)> = corpus
        .iter()
        .enumerate()
        .map(|(i, f)| (ImageId(i as u64), f.clone()))
        .collect();
    // Probes: noisy re-observations of a deterministic corpus slice.
    let probes: Vec<ImageFeatures> = (0..n_probes)
        .map(|i| perturb(&corpus[i % corpus.len()], &mut rng, 2))
        .collect();

    let mut linear = LinearIndex::new(cfg);
    linear.insert_batch(items.clone());
    let mut mih = MihIndex::new(cfg);
    mih.insert_batch(items.clone());
    let mut sharded = ShardedIndex::with_shards(4, || MihIndex::new(cfg));
    sharded.insert_batch(items);

    let cells = vec![
        measure("linear", &linear, &probes, reps),
        measure("mih", &mih, &probes, reps),
        measure("mih_sharded4", &sharded, &probes, reps),
    ];
    let result = QueryThroughputResult { cells };
    if let Some(path) = &args.json_out {
        write_json_lines(path, &result.metrics());
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backends_answer_and_throughput_is_positive() {
        let args = ExpArgs {
            scale: 0.1,
            quick: true,
            seed: 11,
            ..ExpArgs::default()
        };
        let r = run(&args);
        assert_eq!(r.cells.len(), 3);
        for c in &r.cells {
            assert!(c.queries_per_s > 0.0, "cell {c:?}");
            // Noisy re-observations of indexed images must hit on every
            // backend (2 flipped bits keep exact 64-bit words).
            assert!(c.hits > 0, "cell {c:?}");
        }
        // Exact and accelerated backends see the same corpus: identical
        // hit counts.
        assert_eq!(r.cells[0].hits, r.cells[1].hits);
        assert_eq!(r.cells[1].hits, r.cells[2].hits);
        assert_eq!(r.metrics().len(), 3);
    }
}
