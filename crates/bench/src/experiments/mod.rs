//! One module per paper table/figure. See `DESIGN.md` §3 for the index.

pub mod ablation_ssmm;
pub mod calibrate;
pub mod contention;
pub mod descriptor_hotloop;
pub mod fault_resilience;
pub mod fig11_delay;
pub mod fig12_coverage;
pub mod fig3_compression;
pub mod fig4_distribution;
pub mod fig5_upload;
pub mod fig6_precision;
pub mod fig8_adaptation;
pub mod fig9_lifetime;
pub mod fleet_scaling;
pub mod global_vs_local;
pub mod query_throughput;
pub mod redundancy_sweep;
pub mod retrieval;
pub mod runtime_scaling;
pub mod storage;
pub mod table1_space;
pub mod telemetry_report;

mod precision;

pub use precision::top4_precision;
