//! Telemetry report: every scheme on the same batch with tracing enabled,
//! rendered as a per-stage time/bytes/energy table.
//!
//! Not a paper figure — this is the observability companion to Figs. 7–11:
//! where those report scheme-level totals, this breaks each scheme down by
//! pipeline stage (`afe.orb`, `ard.query`, `ard.ssmm`, `aiu.encode`,
//! `net.*`, `srv.*`) using the [`bees_telemetry`] span stream. With
//! `--trace-out <path>` the raw JSONL trace (run manifest first, then one
//! span per line, all on the client's virtual clock) is written for offline
//! analysis, e.g. `scripts/trace_summary.py`.

use crate::args::ExpArgs;
use crate::table::{f1, Table};
use bees_core::schemes::{make_scheme, BatchCtx, SchemeKind};
use bees_core::{BatchReport, BeesConfig, Client, Server};
use bees_datasets::{disaster_batch, SceneConfig};
use bees_net::BandwidthTrace;
use bees_telemetry::{Aggregator, JsonlSink, RunManifest, StageStats, Telemetry, TraceSink};
use std::fs::File;
use std::io::BufWriter;
use std::sync::Arc;

/// One scheme's run: the batch report plus its per-stage statistics.
#[derive(Debug, Clone)]
pub struct SchemeTrace {
    /// Which scheme ran.
    pub kind: SchemeKind,
    /// The batch report.
    pub report: BatchReport,
    /// Per-stage statistics, sorted by stage name.
    pub stages: Vec<(&'static str, StageStats)>,
}

/// Full experiment result.
#[derive(Debug, Clone)]
pub struct TelemetryReportResult {
    /// Batch size used.
    pub batch_size: usize,
    /// One trace per scheme, in roster order.
    pub schemes: Vec<SchemeTrace>,
}

impl TelemetryReportResult {
    /// Prints one per-stage table per scheme.
    pub fn print(&self) {
        println!(
            "\n== Telemetry report: per-stage breakdown ({} images, 25% redundancy) ==",
            self.batch_size
        );
        for s in &self.schemes {
            println!("\n-- {} --", s.kind.as_str());
            let mut t = Table::new(vec![
                "stage",
                "spans",
                "mean (s)",
                "total (s)",
                "max (s)",
                "bytes",
                "joules",
            ]);
            for (name, st) in &s.stages {
                t.row(vec![
                    (*name).to_string(),
                    st.count.to_string(),
                    f1(st.mean_s()),
                    f1(st.total_s),
                    f1(st.max_s),
                    st.bytes.to_string(),
                    f1(st.joules),
                ]);
            }
            t.print();
        }
    }
}

/// Runs every roster scheme over the same batch with telemetry installed.
pub fn run(args: &ExpArgs) -> TelemetryReportResult {
    let config = BeesConfig {
        trace: BandwidthTrace::constant(256_000.0).expect("constant trace is valid"),
        ..BeesConfig::default()
    };
    let batch_size = args.scaled(60, 8);
    let in_batch = (batch_size / 10).max(1);
    let data = disaster_batch(
        args.seed,
        batch_size,
        in_batch,
        0.25,
        SceneConfig::default(),
    );

    // One JSONL sink shared by every scheme when `--trace-out` is given;
    // the run manifest goes first, then spans in close order.
    let jsonl: Option<Arc<JsonlSink<BufWriter<File>>>> = args.trace_out.as_ref().map(|path| {
        let file =
            File::create(path).unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
        Arc::new(JsonlSink::new(BufWriter::new(file)))
    });
    if let Some(sink) = &jsonl {
        let manifest = RunManifest::new(&format!("{config:?}"), args.seed)
            .with_crate("bees-core", env!("CARGO_PKG_VERSION"))
            .with_crate("bees-bench", env!("CARGO_PKG_VERSION"));
        sink.on_manifest(&manifest);
    }

    let mut schemes = Vec::new();
    for kind in args.scheme_roster() {
        let scheme = make_scheme(kind, &config);
        let agg = Arc::new(Aggregator::new());
        let mut sinks: Vec<Arc<dyn TraceSink>> = vec![agg.clone()];
        if let Some(sink) = &jsonl {
            sinks.push(sink.clone());
        }
        let mut server = Server::try_new(&config).expect("config is valid");
        let mut client = Client::try_new(0, &config).expect("default config is valid");
        scheme.preload_server(&mut server, &data.server_preload);
        let mut ctx = BatchCtx::new(&mut client, &mut server, &data.batch)
            .with_telemetry(Telemetry::with_sinks(sinks));
        let report = scheme
            .upload(&mut ctx)
            .expect("constant trace cannot stall");
        schemes.push(SchemeTrace {
            kind,
            report,
            stages: agg.snapshot(),
        });
    }
    if let Some(sink) = &jsonl {
        TraceSink::flush(sink.as_ref()).expect("trace file write failed");
    }
    TelemetryReportResult {
        batch_size,
        schemes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bees_telemetry::names;

    fn quick_args() -> ExpArgs {
        ExpArgs {
            scale: 0.15,
            seed: 31,
            quick: true,
            ..ExpArgs::default()
        }
    }

    #[test]
    fn covers_all_stages_and_telescopes_energy() {
        let r = run(&quick_args());
        assert_eq!(r.schemes.len(), SchemeKind::ALL.len());
        let bees = r
            .schemes
            .iter()
            .find(|s| s.kind == SchemeKind::Bees)
            .expect("BEES in default roster");
        let stage = |name: &str| {
            bees.stages
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, st)| st.clone())
                .unwrap_or_else(|| panic!("stage {name} missing"))
        };
        for name in [
            names::AFE_ORB,
            names::ARD_QUERY,
            names::ARD_SSMM,
            names::AIU_ENCODE,
            names::NET_TRANSMIT,
            names::SRV_QUERY,
            names::SRV_INGEST,
        ] {
            assert!(stage(name).count > 0, "{name} never fired");
        }
        // The four stage spans partition the pipeline: their joules sum to
        // the ledger total the report carries.
        let staged: f64 = [
            names::AFE_ORB,
            names::ARD_QUERY,
            names::ARD_SSMM,
            names::AIU_ENCODE,
        ]
        .iter()
        .map(|n| stage(n).joules)
        .sum();
        let total = bees.report.energy.total();
        assert!(
            (staged - total).abs() < 1e-6,
            "stage joules {staged} vs ledger {total}"
        );
    }

    #[test]
    fn aggregation_is_deterministic() {
        let a = run(&quick_args());
        let b = run(&quick_args());
        for (x, y) in a.schemes.iter().zip(&b.schemes) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.stages, y.stages);
        }
    }

    #[test]
    fn trace_out_writes_manifest_then_spans() {
        let path = std::env::temp_dir().join("bees_telemetry_report_test.jsonl");
        let args = ExpArgs {
            trace_out: Some(path.clone()),
            schemes: Some(vec![SchemeKind::Bees]),
            ..quick_args()
        };
        let r = run(&args);
        assert_eq!(r.schemes.len(), 1);
        let text = std::fs::read_to_string(&path).expect("trace file written");
        let _ = std::fs::remove_file(&path);
        let first = text.lines().next().expect("non-empty trace");
        assert!(first.starts_with("{\"manifest\":"), "got {first}");
        assert!(text.lines().skip(1).all(|l| l.starts_with("{\"span\":")));
        assert!(text.contains("\"span\":\"afe.orb\""));
    }
}
