//! Fig. 5: how quality compression (a) and resolution compression (b)
//! trade image fidelity for bandwidth before upload.
//!
//! Paper shape: both compressions cut the uploaded bytes dramatically;
//! quality compression keeps SSIM high until the proportion approaches
//! ~0.85, after which quality collapses — which is why BEES fixes the
//! quality proportion at 0.85 and adapts only the resolution.

use crate::args::ExpArgs;
use crate::table::{f3, kib, Table};
use bees_core::BeesConfig;
use bees_datasets::{Scene, SceneConfig, ViewJitter};
use bees_image::{codec, metrics, resize, RgbImage};

/// One quality-compression point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityPoint {
    /// Quality compression proportion (0 = lossless-ish, 0.95 = harshest).
    pub proportion: f64,
    /// Mean encoded size in bytes.
    pub mean_bytes: f64,
    /// Mean SSIM of the decoded image vs the original.
    pub mean_ssim: f64,
}

/// One resolution-compression point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolutionPoint {
    /// Resolution compression proportion.
    pub proportion: f64,
    /// Mean encoded size in bytes (at a fixed high quality).
    pub mean_bytes: f64,
}

/// Full experiment result.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// Number of images measured.
    pub n_images: usize,
    /// Mean raw (uncompressed RGB) size in bytes.
    pub mean_raw_bytes: f64,
    /// Mean losslessly compressed (PNG-like) size in bytes — the paper's
    /// alternative format, shown for contrast.
    pub mean_lossless_bytes: f64,
    /// Quality sweep (Fig. 5a).
    pub quality: Vec<QualityPoint>,
    /// Resolution sweep (Fig. 5b).
    pub resolution: Vec<ResolutionPoint>,
}

impl Fig5Result {
    /// Prints both series.
    pub fn print(&self) {
        println!("\n== Fig. 5a: quality compression vs bandwidth & SSIM ==");
        println!(
            "({} images, mean raw size {} KiB, lossless/PNG-like {} KiB)",
            self.n_images,
            kib(self.mean_raw_bytes as usize),
            kib(self.mean_lossless_bytes as usize)
        );
        let mut t = Table::new(vec!["proportion", "mean KiB", "SSIM"]);
        for p in &self.quality {
            t.row(vec![
                format!("{:.2}", p.proportion),
                kib(p.mean_bytes as usize),
                f3(p.mean_ssim),
            ]);
        }
        t.print();
        println!("\n== Fig. 5b: resolution compression vs bandwidth ==");
        let mut t = Table::new(vec!["proportion", "mean KiB"]);
        for p in &self.resolution {
            t.row(vec![
                format!("{:.2}", p.proportion),
                kib(p.mean_bytes as usize),
            ]);
        }
        t.print();
    }
}

fn test_images(seed: u64, n: usize) -> Vec<RgbImage> {
    (0..n)
        .map(|i| {
            Scene::new(seed.wrapping_add(i as u64), SceneConfig::default())
                .render(&ViewJitter::identity())
        })
        .collect()
}

/// Runs both sweeps.
pub fn run(args: &ExpArgs) -> Fig5Result {
    let n = args.scaled(30, 4);
    let images = test_images(args.seed, n);
    let mean_raw =
        images.iter().map(|i| i.raw_byte_size() as f64).sum::<f64>() / images.len() as f64;
    let mean_lossless = images
        .iter()
        .map(|i| codec::lossless::encode_gray_lossless(&i.to_gray()).len() as f64)
        .sum::<f64>()
        / images.len() as f64;

    let mut quality = Vec::new();
    for i in 0..10 {
        let proportion = i as f64 * 0.1;
        let q = BeesConfig::quality_for_proportion(proportion);
        let mut bytes = 0.0;
        let mut ssim = 0.0;
        for img in &images {
            let encoded = codec::encode_rgb(img, q).expect("valid quality");
            bytes += encoded.len() as f64;
            let decoded = codec::decode_rgb(&encoded).expect("own bitstream decodes");
            ssim += metrics::ssim(&img.to_gray(), &decoded.to_gray()).expect("dimensions match");
        }
        quality.push(QualityPoint {
            proportion,
            mean_bytes: bytes / images.len() as f64,
            mean_ssim: ssim / images.len() as f64,
        });
    }

    let mut resolution = Vec::new();
    for i in 0..9 {
        let proportion = i as f64 * 0.1;
        let mut bytes = 0.0;
        for img in &images {
            let shrunk =
                resize::compress_resolution_rgb(img, proportion).expect("valid proportion");
            let encoded = codec::encode_rgb(&shrunk, 90).expect("valid quality");
            bytes += encoded.len() as f64;
        }
        resolution.push(ResolutionPoint {
            proportion,
            mean_bytes: bytes / images.len() as f64,
        });
    }

    Fig5Result {
        n_images: images.len(),
        mean_raw_bytes: mean_raw,
        mean_lossless_bytes: mean_lossless,
        quality,
        resolution,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_axes_shrink_bytes() {
        let args = ExpArgs {
            scale: 0.15,
            seed: 3,
            quick: true,
            ..ExpArgs::default()
        };
        let r = run(&args);
        // Quality compression: bytes fall, SSIM falls, monotonically-ish.
        assert!(r.quality.first().unwrap().mean_bytes > r.quality.last().unwrap().mean_bytes);
        assert!(r.quality.first().unwrap().mean_ssim > r.quality.last().unwrap().mean_ssim);
        // Even the lightest encoding beats raw RGB, and the lossy path
        // beats the lossless (PNG-like) alternative, the paper's rationale
        // for quality compression.
        assert!(r.quality[0].mean_bytes < r.mean_raw_bytes);
        assert!(r.quality[3].mean_bytes < r.mean_lossless_bytes);
        // SSIM is still decent at the paper's 0.85 operating point...
        let at_85 = &r.quality[8];
        assert!(at_85.mean_ssim > 0.5, "ssim at 0.8: {}", at_85.mean_ssim);
        // Resolution compression shrinks bytes monotonically.
        for w in r.resolution.windows(2) {
            assert!(w[1].mean_bytes <= w[0].mean_bytes * 1.05);
        }
        assert!(r.resolution.last().unwrap().mean_bytes < r.resolution[0].mean_bytes / 2.0);
    }
}
