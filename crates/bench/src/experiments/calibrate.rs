//! Threshold calibration: measures the similar/dissimilar Jaccard score
//! distributions for both feature families on the current synthetic scenes
//! and prints the constants `BeesConfig` should carry.
//!
//! This is the reproducible version of the hand-calibration recorded in
//! `DESIGN.md` §5 — rerun it after changing scene parameters, the ORB
//! budget, or the matcher thresholds.

use crate::args::ExpArgs;
use crate::table::{f3, Table};
use bees_core::BeesConfig;
use bees_datasets::{kentucky_like, SceneConfig};
use bees_features::orb::Orb;
use bees_features::pca::PcaSift;
use bees_features::similarity::{jaccard_similarity, SimilarityConfig};
use bees_features::{FeatureExtractor, ImageFeatures};

/// Distribution summary for one feature family.
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    /// Feature family label.
    pub label: String,
    /// Minimum similar-pair score.
    pub similar_min: f64,
    /// 10th-percentile similar-pair score.
    pub similar_p10: f64,
    /// Median similar-pair score.
    pub similar_p50: f64,
    /// Median dissimilar-pair score.
    pub dissimilar_p50: f64,
    /// 90th-percentile dissimilar-pair score.
    pub dissimilar_p90: f64,
    /// Maximum dissimilar-pair score.
    pub dissimilar_max: f64,
}

impl Distribution {
    /// Whether a separation-clean fixed threshold exists, and its value
    /// (midpoint of the gap) when it does.
    pub fn clean_threshold(&self) -> Option<f64> {
        (self.similar_min > self.dissimilar_max)
            .then(|| (self.similar_min + self.dissimilar_max) / 2.0)
    }
}

/// Full calibration result.
#[derive(Debug, Clone)]
pub struct CalibrationResult {
    /// ORB and PCA-SIFT distributions.
    pub distributions: Vec<Distribution>,
    /// Suggested EDR `(t0, k)` for ORB.
    pub edr: (f64, f64),
}

impl CalibrationResult {
    /// Prints the measured distributions and suggested constants.
    pub fn print(&self) {
        println!("\n== Calibration: similarity score distributions ==");
        let mut t = Table::new(vec![
            "family", "sim min", "sim p10", "sim p50", "dis p50", "dis p90", "dis max", "clean T",
        ]);
        for d in &self.distributions {
            t.row(vec![
                d.label.clone(),
                f3(d.similar_min),
                f3(d.similar_p10),
                f3(d.similar_p50),
                f3(d.dissimilar_p50),
                f3(d.dissimilar_p90),
                f3(d.dissimilar_max),
                d.clean_threshold()
                    .map(f3)
                    .unwrap_or_else(|| "overlap!".into()),
            ]);
        }
        t.print();
        println!(
            "suggested EDR (ORB): T = {:.3} + {:.3} * Ebat   (config default: T = {:.3} + {:.3} * Ebat)",
            self.edr.0,
            self.edr.1,
            BeesConfig::default().edr.intercept,
            BeesConfig::default().edr.slope,
        );
    }
}

fn measure(label: &str, feats: &[Vec<ImageFeatures>], cfg: &SimilarityConfig) -> Distribution {
    let mut similar = Vec::new();
    let mut dissimilar = Vec::new();
    for (gi, g) in feats.iter().enumerate() {
        for i in 0..g.len() {
            for j in (i + 1)..g.len() {
                similar.push(jaccard_similarity(&g[i], &g[j], cfg));
            }
        }
        for g2 in feats.iter().skip(gi + 1) {
            dissimilar.push(jaccard_similarity(&g[0], &g2[0], cfg));
        }
    }
    similar.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
    dissimilar.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
    let pct = |v: &[f64], p: f64| v[((v.len() - 1) as f64 * p) as usize];
    Distribution {
        label: label.to_string(),
        similar_min: similar[0],
        similar_p10: pct(&similar, 0.1),
        similar_p50: pct(&similar, 0.5),
        dissimilar_p50: pct(&dissimilar, 0.5),
        dissimilar_p90: pct(&dissimilar, 0.9),
        dissimilar_max: *dissimilar.last().expect("non-empty"),
    }
}

/// Runs the calibration measurement.
pub fn run(args: &ExpArgs) -> CalibrationResult {
    let config = BeesConfig::default();
    let n_groups = args.scaled(10, 3);
    let groups = kentucky_like(args.seed, n_groups, SceneConfig::default());

    let orb = Orb::new(config.orb);
    let orb_feats: Vec<Vec<ImageFeatures>> = groups
        .iter()
        .map(|g| {
            g.images
                .iter()
                .map(|im| orb.extract(&im.to_gray()))
                .collect()
        })
        .collect();
    let pca = PcaSift::with_seeded_basis(config.pca_sift, config.pca_basis_seed);
    let pca_feats: Vec<Vec<ImageFeatures>> = groups
        .iter()
        .map(|g| {
            g.images
                .iter()
                .map(|im| pca.extract(&im.to_gray()))
                .collect()
        })
        .collect();

    let d_orb = measure("ORB", &orb_feats, &config.similarity);
    let d_pca = measure("PCA-SIFT", &pca_feats, &config.similarity);

    // EDR: floor just above the dissimilar max (rounded up to 2 decimals),
    // slope filling 60% of the gap to the similar minimum.
    let t0 = (d_orb.dissimilar_max * 100.0).ceil() / 100.0 + 0.01;
    let k = ((d_orb.similar_min - t0) * 0.6).max(0.01);
    CalibrationResult {
        distributions: vec![d_orb, d_pca],
        edr: (t0, k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bees_energy::AdaptiveScheme;

    #[test]
    fn measured_distributions_validate_config_defaults() {
        let args = ExpArgs {
            scale: 0.5,
            seed: 0xCA11,
            quick: false,
            ..ExpArgs::default()
        };
        let r = run(&args);
        let orb = &r.distributions[0];
        // The config's EDR band must sit inside the measured gap.
        let cfg = BeesConfig::default();
        let t_low = cfg.edr.value(0.0);
        let t_high = cfg.edr.value(1.0);
        assert!(
            t_low > orb.dissimilar_p90,
            "EDR floor {t_low} below dissimilar p90 {}",
            orb.dissimilar_p90
        );
        assert!(
            t_high < orb.similar_p10,
            "EDR ceiling {t_high} above similar p10 {}",
            orb.similar_p10
        );
        // PCA threshold sits in PCA's gap.
        let pca = &r.distributions[1];
        assert!(cfg.fixed_threshold_pca > pca.dissimilar_p90);
        assert!(cfg.fixed_threshold_pca < pca.similar_p10);
    }
}
