//! Storage-tier capacity: exact dedup + cold recompression on one seeded
//! upload corpus.
//!
//! Two arms ingest the *same* workload (equal seeds): `scenes` disaster
//! scenes, each shot from several jittered viewpoints by different
//! devices, plus one byte-identical re-upload per scene (two devices
//! sharing the same stored file). The `off` arm stops after ingest; the
//! `on` arm then advances the virtual clock past the cold-age gate and
//! runs [`Server::run_cold_recompression`]. The figures of merit are the
//! fraction of stored bytes reclaimed (the capacity concern at fleet
//! scale) and the mean SSIM of the re-encoded blobs (the fidelity price).
//! `--json-out` emits the trajectory for `scripts/perf_check.py`.

use crate::args::ExpArgs;
use crate::perf::{write_json_lines, Metric};
use crate::table::{f3, kib, Table};
use bees_core::{BeesConfig, IngestRequest, RetrievalQuery, Server};
use bees_datasets::{Scene, SceneConfig, ViewJitter};
use bees_features::orb::Orb;
use bees_features::{FeatureExtractor, ImageFeatures};
use bees_image::codec;

/// Jittered views per scene (distinct devices shooting the same subject).
const VIEWS_PER_SCENE: usize = 4;
/// Stored-photo quality of the uploads (the camera file the devices ship).
const INGEST_QUALITY: u8 = 85;
/// Virtual seconds between consecutive uploads.
const UPLOAD_SPACING_S: f64 = 10.0;

/// One arm's final storage ledger.
#[derive(Debug, Clone)]
pub struct StorageArm {
    /// `off` (ingest only) or `on` (ingest + cold recompression).
    pub name: &'static str,
    /// Images the corpus uploaded (including the duplicate re-uploads).
    pub uploads: usize,
    /// Physical bytes ever written to the store.
    pub stored_bytes: usize,
    /// Bytes the cold pass gave back.
    pub reclaimed_bytes: usize,
    /// Physical bytes live at the end of the arm.
    pub live_bytes: usize,
    /// Uploads answered by an existing blob (no new physical bytes).
    pub dedup_hits: usize,
    /// Near-duplicate groups the commit-time probe formed.
    pub groups: usize,
    /// Blobs the cold pass actually re-encoded.
    pub blobs_recompressed: usize,
    /// Mean SSIM of re-encoded blobs against their pre-pass decode
    /// (1.0 when nothing was recompressed).
    pub mean_ssim: f64,
}

impl StorageArm {
    /// Fraction of stored bytes the cold pass reclaimed.
    pub fn reclaimed_frac(&self) -> f64 {
        self.reclaimed_bytes as f64 / self.stored_bytes.max(1) as f64
    }
}

/// Both arms, `off` first.
#[derive(Debug, Clone)]
pub struct StorageResult {
    /// `off`, `on`.
    pub arms: Vec<StorageArm>,
}

impl StorageResult {
    /// The perf-trajectory lines for `BENCH_baseline.json`.
    pub fn metrics(&self) -> Vec<Metric> {
        let mut out = Vec::with_capacity(self.arms.len() * 3);
        for a in &self.arms {
            out.push(Metric::lower(
                "storage",
                a.name,
                "live_kib",
                a.live_bytes as f64 / 1024.0,
            ));
            out.push(Metric::new(
                "storage",
                a.name,
                "dedup_hits",
                a.dedup_hits as f64,
            ));
        }
        if let Some(on) = self.arms.iter().find(|a| a.name == "on") {
            out.push(Metric::new(
                "storage",
                "on",
                "reclaimed_frac",
                on.reclaimed_frac(),
            ));
            out.push(Metric::new("storage", "on", "mean_ssim", on.mean_ssim));
        }
        out
    }

    /// Prints the arm table.
    pub fn print(&self) {
        println!("\n== Storage tier: dedup + cold recompression ==");
        let mut t = Table::new(vec![
            "arm",
            "uploads",
            "dedup",
            "groups",
            "stored",
            "reclaimed",
            "live",
            "recompressed",
            "reclaim frac",
            "mean ssim",
        ]);
        for a in &self.arms {
            t.row(vec![
                a.name.to_string(),
                a.uploads.to_string(),
                a.dedup_hits.to_string(),
                a.groups.to_string(),
                kib(a.stored_bytes),
                kib(a.reclaimed_bytes),
                kib(a.live_bytes),
                a.blobs_recompressed.to_string(),
                f3(a.reclaimed_frac()),
                f3(a.mean_ssim),
            ]);
        }
        t.print();
        println!(
            "equal corpus per arm; only the cold pass differs. live = \
             stored - reclaimed (nothing is ever deleted)"
        );
    }
}

/// Ingests the seeded corpus: every view carries its real encoded payload
/// plus ORB features, each scene commits as one epoch (so commit-time
/// grouping sees whole scenes), and one view per scene is re-uploaded
/// byte-identically.
fn ingest_corpus(server: &mut Server, args: &ExpArgs, scenes: usize) -> (usize, ImageFeatures) {
    let orb = Orb::new(BeesConfig::default().orb);
    let scene_cfg = SceneConfig {
        width: 96,
        height: 72,
        n_shapes: 8,
        texture_amp: 8.0,
    };
    let mut uploads = 0;
    let mut t = 0.0;
    let mut probe = ImageFeatures::empty_binary();
    for s in 0..scenes {
        let scene = Scene::new(args.seed.wrapping_add(s as u64), scene_cfg);
        let mut first_payload: Option<(Vec<u8>, ImageFeatures)> = None;
        for v in 0..VIEWS_PER_SCENE {
            let jitter = ViewJitter {
                dx: v as f32 * 1.5,
                dy: -(v as f32),
                brightness: v as i32 * 4,
                ..ViewJitter::identity()
            };
            let img = scene.render(&jitter);
            let payload = codec::encode_rgb(&img, INGEST_QUALITY).expect("scene encodes");
            let features = orb.extract(&img.to_gray());
            if v == 0 {
                first_payload = Some((payload.clone(), features.clone()));
            }
            if s == 0 && v == 0 {
                probe = features.clone();
            }
            server.set_time(t);
            server.ingest(
                IngestRequest::full(payload.len())
                    .with_bytes(payload)
                    .with_features(features),
            );
            uploads += 1;
            t += UPLOAD_SPACING_S;
        }
        // A second device uploads the same stored file for the lead view:
        // byte-identical content, so the store answers it with a dedup hit.
        let (payload, features) = first_payload.expect("VIEWS_PER_SCENE > 0");
        server.set_time(t);
        server.ingest(
            IngestRequest::full(payload.len())
                .with_bytes(payload)
                .with_features(features),
        );
        uploads += 1;
        t += UPLOAD_SPACING_S;
        // Commit the scene's epoch so the grouping probe runs per batch
        // (any feature query flushes the pending epoch).
        server.answer(&RetrievalQuery::new().similar_to(&probe).top_k(1));
    }
    (uploads, probe)
}

fn arm_from(server: &Server, name: &'static str, uploads: usize) -> StorageArm {
    let ledger = server.storage().ledger();
    StorageArm {
        name,
        uploads,
        stored_bytes: ledger.stored_bytes,
        reclaimed_bytes: ledger.reclaimed_bytes,
        live_bytes: server.storage().live_bytes(),
        dedup_hits: ledger.dedup_hits,
        groups: server.storage().group_count(),
        blobs_recompressed: 0,
        mean_ssim: 1.0,
    }
}

/// Runs the two-arm comparison.
pub fn run(args: &ExpArgs) -> StorageResult {
    let scenes = args.scaled(24, 4);
    let config = BeesConfig::default();

    let mut off = Server::try_new(&config).expect("default config is valid");
    let (uploads, _) = ingest_corpus(&mut off, args, scenes);
    let off_arm = arm_from(&off, "off", uploads);

    let mut on = Server::try_new(&config).expect("default config is valid");
    let (uploads, _) = ingest_corpus(&mut on, args, scenes);
    // Let every blob cool past the age gate, then run the cold pass.
    let cold = uploads as f64 * UPLOAD_SPACING_S + config.storage.recompress_min_age_s + 60.0;
    on.set_time(cold);
    let report = on.run_cold_recompression();
    let mut on_arm = arm_from(&on, "on", uploads);
    on_arm.blobs_recompressed = report.recompressed;
    on_arm.mean_ssim = report.mean_ssim();

    let result = StorageResult {
        arms: vec![off_arm, on_arm],
    };
    if let Some(path) = &args.json_out {
        write_json_lines(path, &result.metrics());
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> StorageResult {
        run(&ExpArgs {
            seed: 7,
            quick: true,
            ..ExpArgs::default()
        })
    }

    #[test]
    fn arms_share_the_ingest_ledger_and_on_reclaims() {
        let r = quick();
        assert_eq!(r.arms.len(), 2);
        let off = &r.arms[0];
        let on = &r.arms[1];
        // Equal corpus: the write-side ledger must match exactly.
        assert_eq!(off.stored_bytes, on.stored_bytes);
        assert_eq!(off.dedup_hits, on.dedup_hits);
        assert_eq!(off.groups, on.groups);
        assert_eq!(off.reclaimed_bytes, 0);
        assert_eq!(off.live_bytes, off.stored_bytes);
        // One dedup hit per scene (the byte-identical re-upload).
        assert!(off.dedup_hits > 0);
        // The cold pass reclaims real bytes at bounded fidelity cost.
        assert!(on.reclaimed_bytes > 0, "{on:?}");
        assert!(on.blobs_recompressed > 0);
        assert!(on.mean_ssim >= 0.85, "ssim {}", on.mean_ssim);
        // Ledger identity: nothing is deleted, so live = stored - reclaimed.
        assert_eq!(on.live_bytes, on.stored_bytes - on.reclaimed_bytes);
    }

    #[test]
    fn runs_are_reproducible_and_metrics_well_formed() {
        let a = quick();
        let b = quick();
        for (x, y) in a.arms.iter().zip(&b.arms) {
            assert_eq!(x.stored_bytes, y.stored_bytes);
            assert_eq!(x.reclaimed_bytes, y.reclaimed_bytes);
            assert_eq!(x.dedup_hits, y.dedup_hits);
            assert_eq!(x.mean_ssim, y.mean_ssim);
        }
        let metrics = a.metrics();
        assert_eq!(metrics.len(), 6);
        for m in &metrics {
            assert!(m.value.is_finite() && m.value >= 0.0, "{m:?}");
        }
        // The on arm stores the same bytes but keeps fewer of them live.
        let live = |name: &str| {
            metrics
                .iter()
                .find(|m| m.case == name && m.metric == "live_kib")
                .unwrap()
                .value
        };
        assert!(live("on") < live("off"));
    }
}
