//! AoS vs SoA descriptor hot-loop throughput sweep.
//!
//! The one loop every redundancy decision bottoms out in: XOR + popcount a
//! 256-bit query descriptor against a stored set. This bench sweeps the
//! stored-set size and measures three implementations of the per-query
//! nearest-neighbor scan:
//!
//! * **aos** — the pre-SoA reference: walk `Vec<BinaryDescriptor>` objects
//!   calling `hamming_distance` per pair;
//! * **soa_batched** — [`DescriptorBlock::distances_into`]: one linear
//!   sweep over the flat word array filling a distance row, then a min
//!   scan;
//! * **soa_pruned** — [`DescriptorBlock::nearest_within`]: the flat sweep
//!   with partial-distance pruning, as the matcher actually runs it.
//!
//! All three must find identical nearest neighbors (asserted via a running
//! checksum); only throughput may differ. Throughput is reported in
//! million descriptor pairs per second, where the pair count is the full
//! `n_queries × n` panel — so pruning shows up as *effective* throughput.
//! The acceptance bar (ISSUE 6): `soa_batched ≥ 2× aos` at `n ≥ 10_000`,
//! recorded in `BENCH_baseline.json`.

use crate::args::ExpArgs;
use crate::perf::{write_json_lines, Metric};
use crate::table::Table;
use bees_features::{BinaryDescriptor, DescriptorBlock};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::time::Instant;

/// One stored-set size's measurements.
#[derive(Debug, Clone)]
pub struct HotloopCell {
    /// Stored descriptors scanned per query.
    pub n: usize,
    /// Query descriptors per repetition.
    pub n_queries: usize,
    /// Timed repetitions of the full query panel.
    pub reps: usize,
    /// AoS reference throughput (million pairs per second).
    pub aos_mpairs_per_s: f64,
    /// SoA batched-row throughput.
    pub soa_batched_mpairs_per_s: f64,
    /// SoA pruned-scan effective throughput.
    pub soa_pruned_mpairs_per_s: f64,
}

impl HotloopCell {
    /// SoA batched speedup over the AoS reference.
    pub fn speedup_batched(&self) -> f64 {
        self.soa_batched_mpairs_per_s / self.aos_mpairs_per_s
    }

    /// SoA pruned speedup over the AoS reference.
    pub fn speedup_pruned(&self) -> f64 {
        self.soa_pruned_mpairs_per_s / self.aos_mpairs_per_s
    }
}

/// Full sweep result.
#[derive(Debug, Clone)]
pub struct HotloopResult {
    /// One cell per stored-set size, ascending.
    pub cells: Vec<HotloopCell>,
}

impl HotloopResult {
    /// The perf-trajectory metric lines for `--json-out`.
    pub fn metrics(&self) -> Vec<Metric> {
        let mut out = Vec::new();
        for c in &self.cells {
            let case = format!("n{}", c.n);
            for (name, value) in [
                ("aos_mpairs_per_s", c.aos_mpairs_per_s),
                ("soa_batched_mpairs_per_s", c.soa_batched_mpairs_per_s),
                ("soa_pruned_mpairs_per_s", c.soa_pruned_mpairs_per_s),
                ("speedup_batched", c.speedup_batched()),
                ("speedup_pruned", c.speedup_pruned()),
            ] {
                out.push(Metric::new("descriptor_hotloop", &case, name, value));
            }
        }
        out
    }

    /// Prints the sweep table.
    pub fn print(&self) {
        println!("\n== Descriptor hot loop: AoS vs SoA (Mpairs/s) ==");
        let mut t = Table::new(vec![
            "n",
            "queries",
            "aos",
            "soa",
            "pruned",
            "soa/aos",
            "pruned/aos",
        ]);
        for c in &self.cells {
            t.row(vec![
                c.n.to_string(),
                c.n_queries.to_string(),
                format!("{:.0}", c.aos_mpairs_per_s),
                format!("{:.0}", c.soa_batched_mpairs_per_s),
                format!("{:.0}", c.soa_pruned_mpairs_per_s),
                format!("{:.2}x", c.speedup_batched()),
                format!("{:.2}x", c.speedup_pruned()),
            ]);
        }
        t.print();
    }
}

fn random_descs(rng: &mut ChaCha8Rng, n: usize) -> Vec<BinaryDescriptor> {
    (0..n)
        .map(|_| {
            let mut bytes = [0u8; 32];
            rng.fill(&mut bytes);
            BinaryDescriptor::from_bytes(bytes)
        })
        .collect()
}

/// Mixes one nearest-neighbor result into a running checksum.
fn mix(check: u64, best: (usize, u32)) -> u64 {
    check
        .wrapping_mul(0x100000001B3)
        .wrapping_add(best.0 as u64)
        .wrapping_mul(0x100000001B3)
        .wrapping_add(best.1 as u64)
}

fn measure(n: usize, n_queries: usize, reps: usize, seed: u64) -> HotloopCell {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let descs = random_descs(&mut rng, n);
    let queries = random_descs(&mut rng, n_queries);
    let block = DescriptorBlock::from_descriptors(&descs);
    let query_words: Vec<[u64; 4]> = queries
        .iter()
        .map(|q| [q.word(0), q.word(1), q.word(2), q.word(3)])
        .collect();
    let pairs = (n * n_queries * reps) as f64 / 1e6;

    // AoS reference: per-object hamming_distance scan (1 warmup rep).
    let mut check_aos = 0u64;
    let mut elapsed_aos = 0.0;
    for rep in 0..=reps {
        let t = Instant::now();
        let mut check = 0u64;
        for q in &queries {
            let mut best = (usize::MAX, u32::MAX);
            for (j, d) in descs.iter().enumerate() {
                let dist = q.hamming_distance(d);
                if dist < best.1 {
                    best = (j, dist);
                }
            }
            check = mix(check, best);
        }
        if rep > 0 {
            elapsed_aos += t.elapsed().as_secs_f64();
        }
        check_aos = black_box(check);
    }

    // SoA batched row + min scan.
    let mut check_soa = 0u64;
    let mut elapsed_soa = 0.0;
    let mut row = Vec::new();
    for rep in 0..=reps {
        let t = Instant::now();
        let mut check = 0u64;
        for qw in &query_words {
            block.distances_into(*qw, &mut row);
            let mut best = (usize::MAX, u32::MAX);
            for (j, &d) in row.iter().enumerate() {
                if d < best.1 {
                    best = (j, d);
                }
            }
            check = mix(check, best);
        }
        if rep > 0 {
            elapsed_soa += t.elapsed().as_secs_f64();
        }
        check_soa = black_box(check);
    }

    // SoA pruned nearest (cap 256 accepts everything, like the reference).
    let mut check_pruned = 0u64;
    let mut elapsed_pruned = 0.0;
    for rep in 0..=reps {
        let t = Instant::now();
        let mut check = 0u64;
        for qw in &query_words {
            let best = block
                .nearest_within(*qw, BinaryDescriptor::BITS as u32)
                .unwrap_or((usize::MAX, u32::MAX));
            check = mix(check, best);
        }
        if rep > 0 {
            elapsed_pruned += t.elapsed().as_secs_f64();
        }
        check_pruned = black_box(check);
    }

    assert_eq!(
        check_aos, check_soa,
        "SoA batched nearest diverged from AoS"
    );
    assert_eq!(check_aos, check_pruned, "pruned nearest diverged from AoS");

    HotloopCell {
        n,
        n_queries,
        reps,
        aos_mpairs_per_s: pairs / elapsed_aos.max(1e-12),
        soa_batched_mpairs_per_s: pairs / elapsed_soa.max(1e-12),
        soa_pruned_mpairs_per_s: pairs / elapsed_pruned.max(1e-12),
    }
}

/// Runs the stored-set-size sweep.
pub fn run(args: &ExpArgs) -> HotloopResult {
    // The acceptance criterion lives at n = 10k; the small sizes show where
    // SoA batching starts paying.
    let sweep = [args.scaled(1_000, 200), args.scaled(10_000, 1_000)];
    let n_queries = args.scaled(64, 16);
    let cells = sweep
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            // Keep each timed section around the same pair count so small
            // sizes don't measure timer noise.
            let reps = (20_000_000 / (n * n_queries)).clamp(1, 50);
            measure(n, n_queries, reps, args.seed.wrapping_add(i as u64))
        })
        .collect();
    let result = HotloopResult { cells };
    if let Some(path) = &args.json_out {
        write_json_lines(path, &result.metrics());
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_paths_agree() {
        // The checksum asserts inside `measure` are the real test: all
        // three scan implementations must find identical nearest
        // neighbors. Tiny sizes keep this fast under the offline harness.
        let args = ExpArgs {
            scale: 0.01,
            quick: true,
            seed: 42,
            ..ExpArgs::default()
        };
        let r = run(&args);
        assert_eq!(r.cells.len(), 2);
        for c in &r.cells {
            assert!(c.aos_mpairs_per_s > 0.0, "cell {c:?}");
            assert!(c.soa_batched_mpairs_per_s > 0.0, "cell {c:?}");
            assert!(c.soa_pruned_mpairs_per_s > 0.0, "cell {c:?}");
        }
        assert_eq!(r.metrics().len(), 10);
    }
}
