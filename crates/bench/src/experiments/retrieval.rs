//! Responder-side retrieval: recall vs. bytes moved vs. joules across
//! upload policies, on one seeded fleet under a lossy shared cell.
//!
//! Four arms run the *same* workload (equal seeds, equal cell, equal fault
//! schedule), then a responder sweeps the lattice sites with geo-radius
//! [`RetrievalQuery`]s against the final server:
//!
//! * `always_upload` — Direct Upload ships every photo file verbatim.
//!   No ladder and no catalog: whatever the lossy cell drops is simply
//!   gone, so under contention this is *not* a recall ceiling.
//! * `thumbnail_only` — BEES capped at the thumbnail rung: cheap and
//!   complete-ish, but nothing is retrievable at full quality.
//! * `server_only` — adaptive BEES, deferred images simply vanish (the
//!   pre-pull-down world).
//! * `pulldown` — adaptive BEES plus the on-device catalog and the
//!   post-run pull-down pass fetching cataloged images on demand.
//!
//! The figure of merit is *full-quality recall*: the fraction of captured
//! images a responder can retrieve at full fidelity. Pull-down buys
//! strictly more of it than `server_only` for a bounded, separately
//! metered byte/joule surcharge (`pulldown_bytes` / `pulldown_joules`).
//! `--json-out` emits the trajectory for `scripts/perf_check.py`.

use crate::args::ExpArgs;
use crate::perf::{write_json_lines, Metric};
use crate::table::{f1, f3, kib, Table};
use bees_core::schemes::{BatchCtx, Bees, DirectUpload, SchemeKind, UploadScheme};
use bees_core::sessions::{run_fleet_with_server, FleetConfig, FleetReport, PulldownConfig};
use bees_core::{BatchReport, BeesConfig, Provenance, RetrievalQuery, Server, UploadTier};
use bees_datasets::SceneConfig;
use bees_energy::Battery;
use bees_image::RgbImage;
use bees_net::{BandwidthTrace, FaultModel};

/// Adaptive BEES with every batch capped at the thumbnail rung — the
/// "send tiny previews of everything" baseline.
struct ThumbnailOnly(Bees);

impl UploadScheme for ThumbnailOnly {
    fn kind(&self) -> SchemeKind {
        self.0.kind()
    }

    fn upload(&self, ctx: &mut BatchCtx<'_>) -> bees_core::Result<BatchReport> {
        ctx.cap_tier(UploadTier::Thumbnail);
        self.0.upload(ctx)
    }

    fn preload_server(&self, server: &mut Server, images: &[RgbImage]) {
        self.0.preload_server(server, images);
    }
}

/// One upload-policy arm and what the responder could retrieve from it.
#[derive(Debug, Clone)]
pub struct RetrievalArm {
    /// Arm name (`always_upload`, `thumbnail_only`, `server_only`,
    /// `pulldown`).
    pub name: &'static str,
    /// The deterministic fleet report.
    pub report: FleetReport,
    /// Unique full-fidelity hits across the site sweep.
    pub full_hits: usize,
    /// Unique salvaged-partial hits across the sweep.
    pub partial_hits: usize,
    /// Unique thumbnail-only hits across the sweep.
    pub thumbnail_hits: usize,
    /// Images still stranded in the on-device catalog after the run.
    pub stranded_on_device: usize,
}

impl RetrievalArm {
    /// Fraction of captured images retrievable at full quality.
    pub fn recall_full(&self) -> f64 {
        self.full_hits as f64 / self.report.images_captured.max(1) as f64
    }

    /// Fraction of captured images retrievable at *any* fidelity.
    pub fn recall_any(&self) -> f64 {
        (self.full_hits + self.partial_hits + self.thumbnail_hits) as f64
            / self.report.images_captured.max(1) as f64
    }
}

/// All four arms, table order.
#[derive(Debug, Clone)]
pub struct RetrievalResultExp {
    /// `always_upload`, `thumbnail_only`, `server_only`, `pulldown`.
    pub arms: Vec<RetrievalArm>,
}

impl RetrievalResultExp {
    /// The perf-trajectory lines for `BENCH_baseline.json`.
    pub fn metrics(&self) -> Vec<Metric> {
        let mut out = Vec::with_capacity(self.arms.len() * 4);
        for a in &self.arms {
            out.push(Metric::new(
                "retrieval",
                a.name,
                "recall_full",
                a.recall_full(),
            ));
            out.push(Metric::new(
                "retrieval",
                a.name,
                "recall_any",
                a.recall_any(),
            ));
            out.push(Metric::lower(
                "retrieval",
                a.name,
                "uplink_kb",
                a.report.uplink_bytes as f64 / 1024.0,
            ));
            out.push(Metric::lower(
                "retrieval",
                a.name,
                "energy_j",
                a.report.energy_spent_j,
            ));
        }
        out
    }

    /// Prints the arm table.
    pub fn print(&self) {
        println!("\n== Responder retrieval: recall vs bytes vs joules ==");
        let mut t = Table::new(vec![
            "arm",
            "captured",
            "full",
            "partial",
            "thumb",
            "stranded",
            "fetched",
            "denied",
            "recall full",
            "recall any",
            "uplink",
            "energy J",
        ]);
        for a in &self.arms {
            t.row(vec![
                a.name.to_string(),
                a.report.images_captured.to_string(),
                a.full_hits.to_string(),
                a.partial_hits.to_string(),
                a.thumbnail_hits.to_string(),
                a.stranded_on_device.to_string(),
                a.report.pulldown_fulfilled.to_string(),
                a.report.pulldown_denied.to_string(),
                f3(a.recall_full()),
                f3(a.recall_any()),
                kib(a.report.uplink_bytes),
                f1(a.report.energy_spent_j),
            ]);
        }
        t.print();
        println!(
            "equal seeds and cell per arm; the upload policy (and the \
             pull-down pass) is the only knob that moves"
        );
    }
}

fn fleet_for(args: &ExpArgs, pulldown: Option<PulldownConfig>) -> FleetConfig {
    FleetConfig {
        n_devices: args.scaled(6, 4),
        rounds: args.scaled(3, 2),
        group_size: 4,
        shared_per_group: 2,
        interval_s: 30.0,
        scene: SceneConfig {
            width: 96,
            height: 72,
            n_shapes: 8,
            texture_amp: 8.0,
        },
        seed: args.seed,
        pulldown,
    }
}

fn config_for(args: &ExpArgs) -> BeesConfig {
    let mut c = BeesConfig {
        trace: BandwidthTrace::constant(256_000.0).expect("constant trace is valid"),
        // A big battery: recall differences should come from the cell and
        // the ladder, not from devices dying mid-run.
        battery: Battery::from_joules(1e9),
        ..BeesConfig::default()
    };
    c.cell.enabled = true;
    c.cell.capacity =
        BandwidthTrace::constant(args.scaled(48_000, 32_000) as f64).expect("constant");
    c.cell.epoch_s = 20.0;
    // Lossy enough that the degradation ladder actually defers images into
    // the catalog; cheap retries keep virtual time bounded.
    c.fault = FaultModel::new(0x9E11, 0.7, 0.0, 1e9, 1.0).expect("valid fault model");
    c.retry.max_attempts = 2;
    c.retry.chunk_bytes = 256;
    c
}

/// Sweeps every lattice site with a tight geo query and tallies unique
/// hits by provenance. Radius 0.5 km isolates one site of the fleet's
/// 0.01°-spaced lattice (sites are ~1.11 km apart).
fn sweep(server: &mut Server) -> (usize, usize, usize) {
    let mut full = std::collections::BTreeSet::new();
    let mut partial = std::collections::BTreeSet::new();
    let mut thumb = std::collections::BTreeSet::new();
    for site in 0..4u32 {
        let (lon, lat) = ((site % 2) as f64 * 0.01, (site / 2) as f64 * 0.01);
        for hit in server
            .answer(&RetrievalQuery::new().near(lon, lat, 0.5))
            .hits
        {
            match hit.provenance {
                Provenance::Full => full.insert(hit.id),
                Provenance::SalvagedPartial { .. } => partial.insert(hit.id),
                Provenance::ThumbnailOnly => thumb.insert(hit.id),
                Provenance::OnDevice { .. } => unreachable!("catalog is opt-in"),
            };
        }
    }
    (full.len(), partial.len(), thumb.len())
}

fn run_arm(
    name: &'static str,
    scheme: &dyn UploadScheme,
    config: &BeesConfig,
    fleet: &FleetConfig,
) -> RetrievalArm {
    let (report, mut server) = run_fleet_with_server(
        scheme,
        config,
        fleet,
        &bees_telemetry::Telemetry::disabled(),
    )
    .expect("constant traces cannot stall");
    let (full_hits, partial_hits, thumbnail_hits) = sweep(&mut server);
    RetrievalArm {
        name,
        report,
        full_hits,
        partial_hits,
        thumbnail_hits,
        stranded_on_device: server.on_device_images().len(),
    }
}

/// Runs the four-arm comparison.
pub fn run(args: &ExpArgs) -> RetrievalResultExp {
    let config = config_for(args);
    let fleet = fleet_for(args, None);
    let fleet_pd = fleet_for(args, Some(PulldownConfig::default()));
    let arms = vec![
        run_arm(
            "always_upload",
            &DirectUpload::new(&config),
            &config,
            &fleet,
        ),
        run_arm(
            "thumbnail_only",
            &ThumbnailOnly(Bees::adaptive(&config)),
            &config,
            &fleet,
        ),
        run_arm("server_only", &Bees::adaptive(&config), &config, &fleet),
        run_arm("pulldown", &Bees::adaptive(&config), &config, &fleet_pd),
    ];
    let result = RetrievalResultExp { arms };
    if let Some(path) = &args.json_out {
        write_json_lines(path, &result.metrics());
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RetrievalResultExp {
        run(&ExpArgs {
            seed: 11,
            quick: true,
            ..ExpArgs::default()
        })
    }

    fn arm<'a>(r: &'a RetrievalResultExp, name: &str) -> &'a RetrievalArm {
        r.arms.iter().find(|a| a.name == name).unwrap()
    }

    #[test]
    fn pulldown_strictly_improves_full_recall_over_server_only() {
        let r = quick();
        assert_eq!(r.arms.len(), 4);
        let server_only = arm(&r, "server_only");
        let pulldown = arm(&r, "pulldown");
        assert!(
            pulldown.report.pulldown_fulfilled > 0,
            "the lossy cell must strand images for pull-down to fetch: {:?}",
            pulldown.report
        );
        assert!(
            pulldown.recall_full() > server_only.recall_full(),
            "pull-down {} vs server-only {}",
            pulldown.recall_full(),
            server_only.recall_full()
        );
        // The surcharge is metered and bounded by what actually moved.
        assert!(pulldown.report.pulldown_bytes > 0);
        assert!(pulldown.report.pulldown_joules > 0.0);
        assert!(
            pulldown.report.uplink_bytes
                >= server_only.report.uplink_bytes + pulldown.report.pulldown_bytes
        );
    }

    #[test]
    fn baselines_bracket_the_bees_arms() {
        let r = quick();
        let thumbs = arm(&r, "thumbnail_only");
        let pulldown = arm(&r, "pulldown");
        // Thumbnail-only never yields a full-quality image.
        assert_eq!(thumbs.full_hits, 0, "{thumbs:?}");
        assert!(thumbs.thumbnail_hits > 0);
        // Every arm sees the same captured workload; every arm moves bytes.
        for a in &r.arms {
            assert_eq!(a.report.images_captured, pulldown.report.images_captured);
            assert!(a.report.uplink_bytes > 0, "{}", a.name);
        }
        // Nothing a responder could reach vanishes under pull-down: its
        // any-fidelity recall tops every other arm on this workload.
        for a in &r.arms {
            assert!(
                pulldown.recall_any() >= a.recall_any(),
                "pull-down {} vs {} {}",
                pulldown.recall_any(),
                a.name,
                a.recall_any()
            );
        }
        // What stays cataloged after the run is exactly the denied set.
        assert_eq!(pulldown.stranded_on_device, pulldown.report.pulldown_denied);
        // Only the pull-down arm touches the pull-down ledger.
        for a in &r.arms {
            if a.name != pulldown.name {
                assert_eq!(a.report.pulldown_requests, 0, "{}", a.name);
                assert_eq!(a.report.pulldown_joules, 0.0, "{}", a.name);
            }
        }
    }

    #[test]
    fn arms_are_reproducible_and_metrics_well_formed() {
        let a = quick();
        let b = quick();
        for (x, y) in a.arms.iter().zip(&b.arms) {
            assert_eq!(x.report.to_json(), y.report.to_json());
            assert_eq!(x.full_hits, y.full_hits);
        }
        let metrics = a.metrics();
        assert_eq!(metrics.len(), 16);
        for m in &metrics {
            assert!(m.value.is_finite() && m.value >= 0.0, "{m:?}");
        }
    }
}
