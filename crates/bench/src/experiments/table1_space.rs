//! Table I: space overhead of SIFT, PCA-SIFT, and ORB (BEES) features
//! relative to the images themselves, on the Kentucky-like and Paris-like
//! imagesets.
//!
//! Paper shape: SIFT features rival (or exceed) the image bytes; PCA-SIFT
//! is 25 % of SIFT; ORB is one order below PCA-SIFT and about two below
//! SIFT.

use crate::args::ExpArgs;
use crate::table::{kib, pct, Table};
use bees_core::BeesConfig;
use bees_datasets::{kentucky_like, ParisConfig, ParisLike, SceneConfig};
use bees_features::orb::Orb;
use bees_features::pca::PcaSift;
use bees_features::sift::Sift;
use bees_features::FeatureExtractor;
use bees_image::RgbImage;

/// Space numbers for one imageset.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceRow {
    /// Imageset name.
    pub imageset: String,
    /// Number of images measured.
    pub n_images: usize,
    /// Stored image-file bytes (camera-quality encoding, the paper's
    /// "image size" column is JPEG files, not raw bitmaps).
    pub image_bytes: usize,
    /// SIFT feature bytes.
    pub sift_bytes: usize,
    /// PCA-SIFT feature bytes.
    pub pca_bytes: usize,
    /// ORB (BEES) feature bytes.
    pub orb_bytes: usize,
}

/// Full experiment result.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// One row per imageset.
    pub rows: Vec<SpaceRow>,
}

impl Table1Result {
    /// Prints the paper-style table (percentages are relative to SIFT).
    pub fn print(&self) {
        println!("\n== Table I: feature space overheads ==");
        let mut t = Table::new(vec![
            "imageset",
            "images (KiB)",
            "SIFT (KiB)",
            "PCA-SIFT (KiB)",
            "BEES/ORB (KiB)",
        ]);
        for r in &self.rows {
            let s = r.sift_bytes.max(1) as f64;
            t.row(vec![
                format!("{} ({} imgs)", r.imageset, r.n_images),
                kib(r.image_bytes),
                format!("{} (100%)", kib(r.sift_bytes)),
                format!("{} ({})", kib(r.pca_bytes), pct(r.pca_bytes as f64 / s)),
                format!("{} ({})", kib(r.orb_bytes), pct(r.orb_bytes as f64 / s)),
            ]);
        }
        t.print();
    }
}

fn measure(name: &str, images: &[RgbImage], config: &BeesConfig) -> SpaceRow {
    let sift = Sift::new(config.pca_sift.sift);
    let pca = PcaSift::with_seeded_basis(config.pca_sift, config.pca_basis_seed);
    let orb = Orb::new(config.orb);
    let mut row = SpaceRow {
        imageset: name.to_string(),
        n_images: images.len(),
        image_bytes: 0,
        sift_bytes: 0,
        pca_bytes: 0,
        orb_bytes: 0,
    };
    for img in images {
        let gray = img.to_gray();
        row.image_bytes += bees_image::codec::encoded_rgb_size(img, config.camera_quality)
            .expect("valid camera quality");
        row.sift_bytes += sift.extract(&gray).wire_size();
        row.pca_bytes += pca.extract(&gray).wire_size();
        row.orb_bytes += orb.extract(&gray).wire_size();
    }
    row
}

/// Runs the measurement on both imagesets.
pub fn run(args: &ExpArgs) -> Table1Result {
    let config = BeesConfig::default();

    let kentucky_groups = args.scaled(10, 2);
    let kentucky: Vec<RgbImage> = kentucky_like(args.seed, kentucky_groups, SceneConfig::default())
        .into_iter()
        .flat_map(|g| g.images)
        .collect();

    let paris_images = args.scaled(60, 8);
    let paris_cfg = ParisConfig {
        n_locations: (paris_images / 3).max(2),
        n_images: paris_images,
        ..ParisConfig::default()
    };
    let corpus = ParisLike::generate(args.seed ^ 0x9A15, paris_cfg);
    let paris: Vec<RgbImage> = (0..corpus.len()).map(|i| corpus.image(i).image).collect();

    Table1Result {
        rows: vec![
            measure("Kentucky-like", &kentucky, &config),
            measure("Paris-like", &paris, &config),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orb_is_smallest_sift_is_largest() {
        let args = ExpArgs {
            scale: 0.2,
            seed: 5,
            quick: true,
            ..ExpArgs::default()
        };
        let r = run(&args);
        for row in &r.rows {
            assert!(row.sift_bytes > row.pca_bytes, "{row:?}");
            assert!(row.pca_bytes > row.orb_bytes, "{row:?}");
            // ORB must be far below SIFT (paper: ~2 orders; detector
            // differences make the exact factor workload-dependent).
            assert!(
                (row.orb_bytes as f64) < 0.35 * row.sift_bytes as f64,
                "ORB {} vs SIFT {}",
                row.orb_bytes,
                row.sift_bytes
            );
        }
    }
}
