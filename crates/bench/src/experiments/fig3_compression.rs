//! Fig. 3: impact of the bitmap compression proportion on (a) similarity-
//! detection precision and (b) feature-extraction energy, both normalized
//! to the uncompressed case.
//!
//! Paper shape: precision stays above ~0.9 of the uncompressed value up to
//! C ≈ 0.4, then degrades; energy falls roughly monotonically with C
//! (approximately linearly in the paper's measurements).

use crate::args::ExpArgs;
use crate::experiments::top4_precision;
use crate::table::{f3, Table};
use bees_core::BeesConfig;
use bees_datasets::{kentucky_like, SceneConfig};
use bees_features::orb::Orb;
use bees_features::FeatureExtractor;
use bees_image::resize;

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionPoint {
    /// Bitmap compression proportion `C`.
    pub proportion: f64,
    /// Top-4 precision normalized to `C = 0`.
    pub normalized_precision: f64,
    /// Feature-extraction energy normalized to `C = 0`.
    pub normalized_energy: f64,
}

/// Full experiment result.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// Sweep points ordered by proportion.
    pub points: Vec<CompressionPoint>,
    /// Absolute precision at `C = 0` (for context).
    pub base_precision: f64,
    /// Absolute extraction energy at `C = 0`, joules per query image.
    pub base_energy_j: f64,
}

impl Fig3Result {
    /// Prints the paper-style series.
    pub fn print(&self) {
        println!("\n== Fig. 3: bitmap compression vs precision & energy ==");
        println!(
            "(base precision {:.3}, base extraction energy {:.4} J/image)",
            self.base_precision, self.base_energy_j
        );
        let mut t = Table::new(vec!["C", "norm. precision", "norm. energy"]);
        for p in &self.points {
            t.row(vec![
                format!("{:.2}", p.proportion),
                f3(p.normalized_precision),
                f3(p.normalized_energy),
            ]);
        }
        t.print();
    }
}

/// Runs the sweep.
pub fn run(args: &ExpArgs) -> Fig3Result {
    let config = BeesConfig::default();
    let n_groups = args.scaled(40, 4);
    let groups = kentucky_like(args.seed, n_groups, SceneConfig::default());
    let orb = Orb::new(config.orb);
    let proportions: Vec<f64> = (0..10)
        .map(|i| i as f64 * 0.1)
        .filter(|&c| c < 0.95)
        .collect();

    let mut precisions = Vec::new();
    let mut energies = Vec::new();
    for &c in &proportions {
        let mut energy = 0.0;
        let mut n = 0usize;
        let p = top4_precision(
            &groups,
            &config.similarity,
            |g| orb.extract(g),
            |g| {
                let compressed = resize::compress_bitmap(g, c).expect("proportion is valid");
                let (f, stats) = orb.extract_with_stats(&compressed);
                energy += config.energy.extraction_energy(orb.kind(), &stats);
                n += 1;
                f
            },
        );
        precisions.push(p);
        energies.push(energy / n as f64);
    }

    let base_p = precisions[0].max(1e-9);
    let base_e = energies[0].max(1e-12);
    let points = proportions
        .iter()
        .zip(precisions.iter().zip(&energies))
        .map(|(&c, (&p, &e))| CompressionPoint {
            proportion: c,
            normalized_precision: p / base_p,
            normalized_energy: e / base_e,
        })
        .collect();
    Fig3Result {
        points,
        base_precision: precisions[0],
        base_energy_j: energies[0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let args = ExpArgs {
            scale: 0.15,
            seed: 11,
            quick: true,
            ..ExpArgs::default()
        };
        let r = run(&args);
        assert_eq!(r.points.len(), 10);
        // C = 0 is the normalization anchor.
        assert!((r.points[0].normalized_precision - 1.0).abs() < 1e-9);
        assert!((r.points[0].normalized_energy - 1.0).abs() < 1e-9);
        // Energy falls with compression; by C = 0.5 it should be well below 1.
        assert!(r.points[5].normalized_energy < 0.8);
        // Moderate compression preserves most precision (paper: > 0.9 at 0.4).
        assert!(
            r.points[3].normalized_precision > 0.7,
            "precision at C=0.3: {}",
            r.points[3].normalized_precision
        );
    }
}
