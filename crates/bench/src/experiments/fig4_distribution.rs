//! Fig. 4: similarity distribution of similar vs dissimilar image pairs —
//! true/false positive rate as a function of the similarity threshold.
//!
//! This is also where the EDR constants come from: the paper picks
//! `T0` at ~90 % TP / ~10 % FP and a slope `k` that keeps the threshold
//! discriminative at full battery. The binary prints the constants derived
//! from *our* measured distribution (DESIGN.md §5).

use crate::args::ExpArgs;
use crate::table::{pct, Table};
use bees_core::BeesConfig;
use bees_datasets::{kentucky_like, SceneConfig};
use bees_features::orb::Orb;
use bees_features::similarity::jaccard_similarity;
use bees_features::FeatureExtractor;

/// One threshold sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatePoint {
    /// Similarity threshold `T`.
    pub threshold: f64,
    /// Fraction of similar pairs with similarity above `T`.
    pub true_positive_rate: f64,
    /// Fraction of dissimilar pairs with similarity above `T`.
    pub false_positive_rate: f64,
}

/// Full experiment result.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// Rate curve over thresholds.
    pub points: Vec<RatePoint>,
    /// Similar-pair similarity scores (sorted).
    pub similar_scores: Vec<f64>,
    /// Dissimilar-pair similarity scores (sorted).
    pub dissimilar_scores: Vec<f64>,
    /// Suggested EDR intercept `T0` (~90 % TP, ≤10 % FP).
    pub suggested_t0: f64,
    /// Suggested EDR slope `k`.
    pub suggested_k: f64,
}

impl Fig4Result {
    /// Prints the paper-style series and the derived EDR constants.
    pub fn print(&self) {
        println!("\n== Fig. 4: similarity distribution (similar vs dissimilar pairs) ==");
        println!(
            "({} similar pairs, {} dissimilar pairs)",
            self.similar_scores.len(),
            self.dissimilar_scores.len()
        );
        let mut t = Table::new(vec!["threshold T", "TP rate", "FP rate"]);
        for p in &self.points {
            t.row(vec![
                format!("{:.3}", p.threshold),
                pct(p.true_positive_rate),
                pct(p.false_positive_rate),
            ]);
        }
        t.print();
        println!(
            "derived EDR constants: T = {:.3} + {:.3} * Ebat  (paper form: T = T0 + k*Ebat)",
            self.suggested_t0, self.suggested_k
        );
    }
}

/// Runs the experiment.
pub fn run(args: &ExpArgs) -> Fig4Result {
    let config = BeesConfig::default();
    let n_groups = args.scaled(25, 4);
    let groups = kentucky_like(args.seed, n_groups, SceneConfig::default());
    let orb = Orb::new(config.orb);
    let features: Vec<Vec<_>> = groups
        .iter()
        .map(|g| {
            g.images
                .iter()
                .map(|im| orb.extract(&im.to_gray()))
                .collect()
        })
        .collect();

    let mut similar = Vec::new();
    let mut dissimilar = Vec::new();
    for (gi, g) in features.iter().enumerate() {
        for i in 0..g.len() {
            for j in (i + 1)..g.len() {
                similar.push(jaccard_similarity(&g[i], &g[j], &config.similarity));
            }
        }
        for g2 in features.iter().skip(gi + 1) {
            dissimilar.push(jaccard_similarity(&g[0], &g2[0], &config.similarity));
        }
    }
    similar.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
    dissimilar.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));

    let rate_above = |scores: &[f64], t: f64| -> f64 {
        scores.iter().filter(|&&s| s > t).count() as f64 / scores.len().max(1) as f64
    };
    let points: Vec<RatePoint> = (0..=30)
        .map(|i| {
            let t = i as f64 * 0.01;
            RatePoint {
                threshold: t,
                true_positive_rate: rate_above(&similar, t),
                false_positive_rate: rate_above(&dissimilar, t),
            }
        })
        .collect();

    // T0: the smallest threshold with TP >= 90% and FP <= 10% (fall back to
    // the FP-only condition if the distributions overlap).
    let suggested_t0 = points
        .iter()
        .find(|p| p.true_positive_rate >= 0.9 && p.false_positive_rate <= 0.1)
        .or_else(|| points.iter().find(|p| p.false_positive_rate <= 0.1))
        .map(|p| p.threshold)
        .unwrap_or(0.1);
    // k: keep the full-battery threshold below the similar-pair median so
    // true duplicates are still eliminated at Ebat = 1.
    let median_similar = similar.get(similar.len() / 2).copied().unwrap_or(0.3);
    let suggested_k = ((median_similar - suggested_t0) * 0.6).max(0.01);

    Fig4Result {
        points,
        similar_scores: similar,
        dissimilar_scores: dissimilar,
        suggested_t0,
        suggested_k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributions_separate() {
        let args = ExpArgs {
            scale: 0.2,
            seed: 7,
            quick: true,
            ..ExpArgs::default()
        };
        let r = run(&args);
        // Rates are monotone non-increasing in the threshold.
        for w in r.points.windows(2) {
            assert!(w[1].true_positive_rate <= w[0].true_positive_rate + 1e-9);
            assert!(w[1].false_positive_rate <= w[0].false_positive_rate + 1e-9);
        }
        // The derived T0 must separate: high TP, low FP.
        let at_t0 = r
            .points
            .iter()
            .find(|p| p.threshold >= r.suggested_t0)
            .expect("t0 within sweep");
        assert!(at_t0.false_positive_rate <= 0.1);
        assert!(
            at_t0.true_positive_rate >= 0.8,
            "TP {}",
            at_t0.true_positive_rate
        );
        // And the default config should be near what we derive.
        assert!(
            (r.suggested_t0 - 0.10).abs() < 0.06,
            "t0 {}",
            r.suggested_t0
        );
    }
}
