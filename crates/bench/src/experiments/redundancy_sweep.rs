//! Figs. 7 & 10: energy and bandwidth overheads of the four schemes as the
//! cross-batch redundancy ratio varies over {0, 25, 50, 75} %.
//!
//! Workload (paper §IV-B3): a batch of 100 disaster images containing 10
//! in-batch similar images with no server-side counterpart; the server is
//! pre-seeded so that the stated fraction of the batch is cross-batch
//! redundant.
//!
//! Paper shapes: all feature-based schemes improve with redundancy;
//! SmartEye > MRC > BEES on energy everywhere; at 0 % redundancy SmartEye
//! and MRC cost *more* than Direct Upload while BEES still saves ~67 %;
//! BEES saves ≥77 % bandwidth vs SmartEye; MRC uses slightly more
//! bandwidth than SmartEye (thumbnails).

use crate::args::ExpArgs;
use crate::table::{f1, kib, Table};
use bees_core::schemes::{make_scheme, BatchCtx, SchemeKind, UploadScheme};
use bees_core::{BatchReport, BeesConfig, Client, Server};
use bees_datasets::{disaster_batch, SceneConfig};
use bees_net::BandwidthTrace;

/// Reports for all schemes at one redundancy ratio.
#[derive(Debug, Clone)]
pub struct RatioPoint {
    /// Cross-batch redundancy ratio staged.
    pub ratio: f64,
    /// One report per scheme, in [Direct, SmartEye, MRC, BEES] order.
    pub reports: Vec<BatchReport>,
}

/// Full sweep result, shared by Fig. 7 (energy) and Fig. 10 (bandwidth).
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Batch size used.
    pub batch_size: usize,
    /// In-batch similar images staged.
    pub in_batch: usize,
    /// One point per ratio.
    pub points: Vec<RatioPoint>,
}

impl SweepResult {
    /// Prints the Fig. 7 energy table.
    pub fn print_energy(&self) {
        println!(
            "\n== Fig. 7: energy overhead vs cross-batch redundancy ratio ({} images, {} in-batch similars) ==",
            self.batch_size, self.in_batch
        );
        let mut t = Table::new(vec![
            "ratio",
            "Direct (J)",
            "SmartEye (J)",
            "MRC (J)",
            "BEES (J)",
        ]);
        for p in &self.points {
            let mut row = vec![format!("{:.0}%", p.ratio * 100.0)];
            row.extend(p.reports.iter().map(|r| f1(r.active_energy())));
            t.row(row);
        }
        t.print();
        if let Some(zero) = self.points.first() {
            let direct = zero.reports[0].active_energy();
            let bees = zero.reports[3].active_energy();
            println!(
                "at 0% redundancy: BEES saves {:.1}% vs Direct Upload",
                (1.0 - bees / direct) * 100.0
            );
        }
    }

    /// Prints the Fig. 10 bandwidth table.
    pub fn print_bandwidth(&self) {
        println!(
            "\n== Fig. 10: bandwidth overhead vs cross-batch redundancy ratio ({} images) ==",
            self.batch_size
        );
        let mut t = Table::new(vec![
            "ratio",
            "Direct (KiB)",
            "SmartEye (KiB)",
            "MRC (KiB)",
            "BEES (KiB)",
        ]);
        for p in &self.points {
            let mut row = vec![format!("{:.0}%", p.ratio * 100.0)];
            row.extend(p.reports.iter().map(|r| kib(r.bandwidth_bytes())));
            t.row(row);
        }
        t.print();
        if let Some(p) = self.points.iter().find(|p| (p.ratio - 0.5).abs() < 0.01) {
            let se = p.reports[1].bandwidth_bytes() as f64;
            let bees = p.reports[3].bandwidth_bytes() as f64;
            println!(
                "at 50% redundancy: BEES saves {:.1}% bandwidth vs SmartEye",
                (1.0 - bees / se) * 100.0
            );
        }
    }
}

/// Runs the sweep once (both figures read from the same run, as in the
/// paper: "when examining the energy overheads ... we record the bandwidth
/// overhead of each scheme").
pub fn run(args: &ExpArgs) -> SweepResult {
    // A steady median bitrate keeps the sweep comparable across ratios; the
    // delay experiment (Fig. 11) varies the bitrate explicitly.
    let config = BeesConfig {
        trace: BandwidthTrace::constant(256_000.0).expect("constant trace is valid"),
        ..BeesConfig::default()
    };

    let batch_size = args.scaled(100, 8);
    let in_batch = (batch_size / 10).max(1);
    let scene = SceneConfig::default();

    let schemes: Vec<Box<dyn UploadScheme>> = [
        SchemeKind::DirectUpload,
        SchemeKind::SmartEye,
        SchemeKind::Mrc,
        SchemeKind::Bees,
    ]
    .iter()
    .map(|&k| make_scheme(k, &config))
    .collect();

    let mut points = Vec::new();
    for (k, &ratio) in [0.0, 0.25, 0.5, 0.75].iter().enumerate() {
        let data = disaster_batch(
            args.seed.wrapping_add(k as u64),
            batch_size,
            in_batch,
            ratio,
            scene,
        );
        let mut reports = Vec::new();
        for scheme in &schemes {
            let mut server = Server::try_new(&config).expect("config is valid");
            let mut client = Client::try_new(0, &config).expect("default config is valid");
            scheme.preload_server(&mut server, &data.server_preload);
            let report = scheme
                .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
                .expect("constant trace cannot stall");
            reports.push(report);
        }
        points.push(RatioPoint { ratio, reports });
    }
    SweepResult {
        batch_size,
        in_batch,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shapes_hold() {
        let args = ExpArgs {
            scale: 0.12,
            seed: 41,
            quick: true,
            ..ExpArgs::default()
        };
        let r = run(&args);
        assert_eq!(r.points.len(), 4);
        for p in &r.points {
            let [direct, smarteye, mrc, bees] = &p.reports[..] else {
                panic!("4 schemes")
            };
            // BEES wins energy and bandwidth everywhere.
            assert!(
                bees.active_energy() < direct.active_energy(),
                "ratio {}",
                p.ratio
            );
            assert!(
                bees.active_energy() < mrc.active_energy(),
                "ratio {}",
                p.ratio
            );
            assert!(
                bees.bandwidth_bytes() < smarteye.bandwidth_bytes(),
                "ratio {}",
                p.ratio
            );
            // SmartEye extraction (PCA-SIFT) costs more than MRC's ORB.
            assert!(
                smarteye.active_energy() > mrc.active_energy(),
                "ratio {}",
                p.ratio
            );
        }
        // At 0% cross-batch redundancy the feature-only schemes lose to
        // Direct Upload (they still pay extraction + features).
        let zero = &r.points[0];
        assert!(zero.reports[1].active_energy() > zero.reports[0].active_energy());
        // Feature-based schemes improve as redundancy grows.
        let e = |k: usize, s: usize| r.points[k].reports[s].active_energy();
        assert!(e(3, 3) < e(0, 3), "BEES should improve with redundancy");
        assert!(e(3, 2) < e(0, 2), "MRC should improve with redundancy");
    }
}
