//! Global vs. local features: the §III-D design choice, measured.
//!
//! The paper asserts that "local features have more robust and higher
//! accuracy than global features for similarity detection" and therefore
//! builds BEES on ORB rather than the color histograms PhotoNet used. This
//! experiment quantifies the claim on the synthetic Kentucky benchmark:
//! top-4 retrieval precision of histogram-intersection ranking vs. ORB
//! Jaccard ranking, plus each method's separation margin between similar
//! and dissimilar pairs.

use crate::args::ExpArgs;
use crate::table::{f3, Table};
use bees_core::BeesConfig;
use bees_datasets::{kentucky_like, KentuckyGroup, SceneConfig};
use bees_features::global::ColorHistogram;
use bees_features::orb::Orb;
use bees_features::similarity::jaccard_similarity;
use bees_features::FeatureExtractor;
use bees_image::{draw, Rgb};

/// The shared color world: real disaster corpora reuse the same tones
/// (rubble grays, sky blues, vegetation greens, brick reds), which is what
/// makes color histograms weak discriminators. The synthetic scenes are
/// posterized onto this palette before the comparison so the global
/// features face realistic conditions; ORB sees the same posterized pixels.
const SHARED_PALETTE: [Rgb; 10] = [
    Rgb {
        r: 38,
        g: 38,
        b: 42,
    }, // asphalt
    Rgb {
        r: 96,
        g: 92,
        b: 88,
    }, // concrete
    Rgb {
        r: 150,
        g: 145,
        b: 138,
    }, // rubble
    Rgb {
        r: 205,
        g: 200,
        b: 190,
    }, // dust
    Rgb {
        r: 120,
        g: 86,
        b: 62,
    }, // timber
    Rgb {
        r: 160,
        g: 64,
        b: 52,
    }, // brick
    Rgb {
        r: 70,
        g: 105,
        b: 60,
    }, // vegetation
    Rgb {
        r: 110,
        g: 140,
        b: 180,
    }, // sky
    Rgb {
        r: 230,
        g: 228,
        b: 220,
    }, // cloud
    Rgb {
        r: 20,
        g: 16,
        b: 14,
    }, // shadow
];

/// Precision and separation for one feature family.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyRow {
    /// Family label.
    pub label: String,
    /// Top-4 retrieval precision.
    pub precision: f64,
    /// Mean similar-pair score minus mean dissimilar-pair score, in units
    /// of the dissimilar-pair standard deviation (a d'-style margin;
    /// larger = more separable).
    pub separation_margin: f64,
}

/// Full experiment result.
#[derive(Debug, Clone)]
pub struct GlobalVsLocalResult {
    /// Number of groups (queries).
    pub n_groups: usize,
    /// One row per family.
    pub rows: Vec<FamilyRow>,
}

impl GlobalVsLocalResult {
    /// Prints the comparison.
    pub fn print(&self) {
        println!(
            "\n== Global vs local features (paper SIII-D claim; {} groups) ==",
            self.n_groups
        );
        let mut t = Table::new(vec!["family", "top-4 precision", "separation margin (d')"]);
        for r in &self.rows {
            t.row(vec![
                r.label.clone(),
                f3(r.precision),
                f3(r.separation_margin),
            ]);
        }
        t.print();
        println!("local (ORB) features separate similar from dissimilar pairs far more");
        println!("cleanly (the margin column) — the reason BEES pays for ORB extraction");
        println!("instead of reusing PhotoNet's cheap histograms for threshold dedup.");
    }
}

/// Top-4 precision over the groups given a pairwise score function
/// (`score(query_group, query_img=0, candidate_group, candidate_img)`).
fn top4_precision<F: Fn(usize, usize) -> f64>(n_groups: usize, score: F) -> f64 {
    let size = KentuckyGroup::GROUP_SIZE;
    let mut total = 0.0;
    for g in 0..n_groups {
        let q = g * size; // canonical view of group g
        let mut scored: Vec<(usize, f64)> =
            (0..n_groups * size).map(|c| (c, score(q, c))).collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite scores")
                .then(a.0.cmp(&b.0))
        });
        let own = scored.iter().take(4).filter(|(c, _)| c / size == g).count();
        total += own as f64 / 4.0;
    }
    total / n_groups as f64
}

fn margin(similar: &[f64], dissimilar: &[f64]) -> f64 {
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let ms = mean(similar);
    let md = mean(dissimilar);
    let var_d = dissimilar.iter().map(|&x| (x - md) * (x - md)).sum::<f64>()
        / dissimilar.len().max(1) as f64;
    (ms - md) / var_d.sqrt().max(1e-9)
}

/// Runs the comparison.
pub fn run(args: &ExpArgs) -> GlobalVsLocalResult {
    let config = BeesConfig::default();
    let n_groups = args.scaled(10, 4);
    let groups = kentucky_like(args.seed, n_groups, SceneConfig::default());
    let size = KentuckyGroup::GROUP_SIZE;

    // Posterize everything onto the shared palette, then compute both
    // feature families from the SAME pixels.
    let orb = Orb::new(config.orb);
    let all_images: Vec<_> = groups
        .iter()
        .flat_map(|g| g.images.iter())
        .map(|im| draw::posterize(im, &SHARED_PALETTE))
        .collect();
    let orb_feats: Vec<_> = all_images
        .iter()
        .map(|im| orb.extract(&im.to_gray()))
        .collect();
    let hists: Vec<_> = all_images.iter().map(ColorHistogram::from_image).collect();

    let orb_score = |q: usize, c: usize| -> f64 {
        if q == c {
            return 1.0;
        }
        jaccard_similarity(&orb_feats[q], &orb_feats[c], &config.similarity)
    };
    let hist_score = |q: usize, c: usize| -> f64 {
        if q == c {
            return 1.0;
        }
        hists[q].intersection(&hists[c])
    };

    let mut rows = Vec::new();
    for (label, score) in [
        ("ORB (local)", &orb_score as &dyn Fn(usize, usize) -> f64),
        ("color histogram (global)", &hist_score),
    ] {
        let precision = top4_precision(n_groups, score);
        let mut similar = Vec::new();
        let mut dissimilar = Vec::new();
        for a in 0..n_groups * size {
            for b in (a + 1)..n_groups * size {
                let s = score(a, b);
                if a / size == b / size {
                    similar.push(s);
                } else {
                    dissimilar.push(s);
                }
            }
        }
        rows.push(FamilyRow {
            label: label.to_string(),
            precision,
            separation_margin: margin(&similar, &dissimilar),
        });
    }
    GlobalVsLocalResult { n_groups, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_features_beat_global_on_both_axes() {
        let args = ExpArgs {
            scale: 0.5,
            seed: 95,
            quick: false,
            ..ExpArgs::default()
        };
        let r = run(&args);
        let orb = &r.rows[0];
        let hist = &r.rows[1];
        // The schemes deduplicate by thresholding scores, so the decisive
        // quantity is the separation margin, where local features must
        // dominate clearly.
        assert!(
            orb.separation_margin > 1.5 * hist.separation_margin,
            "ORB margin {} should dominate histogram margin {}",
            orb.separation_margin,
            hist.separation_margin
        );
        assert!(orb.precision > 0.8, "ORB precision {}", orb.precision);
    }
}
