//! Aligned plain-text table printing for experiment output.

/// A simple column-aligned table.
///
/// # Examples
///
/// ```
/// use bees_bench::table::Table;
///
/// let mut t = Table::new(vec!["scheme", "energy (J)"]);
/// t.row(vec!["BEES".into(), "12.3".into()]);
/// let s = t.render();
/// assert!(s.contains("BEES"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let n_cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(n_cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<w$}", w = w));
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (n_cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 3 decimal places.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with 1 decimal place.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a byte count as KiB with one decimal.
pub fn kib(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["x", "y"]);
        t.row(vec!["only".into()]);
        assert!(t.render().contains("only"));
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(kib(2048), "2.0");
        assert_eq!(pct(0.5), "50.0%");
    }
}
