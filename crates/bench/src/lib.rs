#![warn(missing_docs)]

//! Experiment harnesses reproducing every table and figure of the BEES
//! paper's evaluation (§IV), plus Criterion microbenchmarks of the hot
//! paths.
//!
//! Each experiment lives in [`experiments`] as a library function returning
//! a typed result with a `print` method; the `src/bin/` binaries are thin
//! CLI wrappers (`--scale`, `--seed`, `--quick`) and `run_all` executes the
//! full suite. `EXPERIMENTS.md` at the workspace root records paper-vs-
//! measured for each.
//!
//! Absolute numbers differ from the paper (synthetic images, simulated
//! battery/network); the *shapes* — orderings, crossovers, relative
//! factors — are the reproduction targets.

pub mod args;
pub mod experiments;
pub mod perf;
pub mod table;
