//! The perf-trajectory metric schema shared by the throughput benches.
//!
//! `descriptor_hotloop`, `query_throughput`, and `runtime_scaling` all emit
//! flat JSON lines of the form
//!
//! ```json
//! {"bench":"descriptor_hotloop","case":"n10000","metric":"soa_batched_mpairs_per_s","value":512.3}
//! ```
//!
//! via `--json-out`. Throughput-shaped metrics (**higher is better**,
//! `*_per_s`, `speedup_*`) omit the direction key; cost-shaped metrics
//! (**lower is better**, e.g. the robustness experiment's wasted joules)
//! carry an explicit `"dir":"lower"` so `scripts/perf_check.py` can flip
//! its tolerance band per line when comparing a fresh run against the
//! checked-in `BENCH_baseline.json`. See `DESIGN.md` §10 for how to read
//! and update the baseline.

use std::path::Path;

/// One measured value: `(bench, case, metric) -> value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Bench binary name (`descriptor_hotloop`, ...).
    pub bench: String,
    /// Workload case within the bench (`n10000`, `mih_sharded4`, ...).
    pub case: String,
    /// Metric name; by convention ends in a unit suffix
    /// (`*_per_s`, `*_joules`, ...).
    pub metric: String,
    /// The measured value.
    pub value: f64,
    /// Whether a *smaller* value is the improvement (energy, latency).
    /// Defaults to `false`: throughputs and speedups grow when they get
    /// better.
    pub lower_is_better: bool,
}

impl Metric {
    /// Builds a higher-is-better metric line (throughputs, speedups).
    pub fn new(
        bench: impl Into<String>,
        case: impl Into<String>,
        metric: impl Into<String>,
        value: f64,
    ) -> Self {
        Metric {
            bench: bench.into(),
            case: case.into(),
            metric: metric.into(),
            value,
            lower_is_better: false,
        }
    }

    /// Builds a lower-is-better metric line (costs: joules, seconds of
    /// delay). `perf_check.py` inverts its tolerance band for these.
    pub fn lower(
        bench: impl Into<String>,
        case: impl Into<String>,
        metric: impl Into<String>,
        value: f64,
    ) -> Self {
        Metric {
            lower_is_better: true,
            ..Metric::new(bench, case, metric, value)
        }
    }

    /// One JSON object (no trailing newline). Hand-rolled like the fleet
    /// report's writer — the bench crate carries no serde dependency. The
    /// `dir` key only appears on lower-is-better lines, so existing
    /// higher-is-better baselines stay byte-identical.
    pub fn to_json(&self) -> String {
        let dir = if self.lower_is_better {
            ",\"dir\":\"lower\""
        } else {
            ""
        };
        format!(
            "{{\"bench\":\"{}\",\"case\":\"{}\",\"metric\":\"{}\",\"value\":{:.6}{dir}}}",
            self.bench, self.case, self.metric, self.value
        )
    }
}

/// Renders metrics as JSON lines.
pub fn to_json_lines(metrics: &[Metric]) -> String {
    let mut out = String::new();
    for m in metrics {
        out.push_str(&m.to_json());
        out.push('\n');
    }
    out
}

/// Writes metrics as JSON lines to `path`, warning (not failing) on IO
/// errors to match the experiment binaries' `--json-out` behavior.
pub fn write_json_lines(path: &Path, metrics: &[Metric]) {
    if let Err(e) = std::fs::write(path, to_json_lines(metrics)) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_flat_and_stable() {
        let m = Metric::new("descriptor_hotloop", "n1000", "aos_mpairs_per_s", 123.5);
        assert_eq!(
            m.to_json(),
            "{\"bench\":\"descriptor_hotloop\",\"case\":\"n1000\",\
             \"metric\":\"aos_mpairs_per_s\",\"value\":123.500000}"
        );
    }

    #[test]
    fn lower_is_better_lines_carry_the_direction_key() {
        let m = Metric::lower("fault_resilience", "bees", "wasted_joules", 2.25);
        assert_eq!(
            m.to_json(),
            "{\"bench\":\"fault_resilience\",\"case\":\"bees\",\
             \"metric\":\"wasted_joules\",\"value\":2.250000,\"dir\":\"lower\"}"
        );
    }

    #[test]
    fn json_lines_end_with_newline() {
        let lines = to_json_lines(&[
            Metric::new("a", "b", "c", 1.0),
            Metric::new("d", "e", "f", 2.0),
        ]);
        assert_eq!(lines.lines().count(), 2);
        assert!(lines.ends_with('\n'));
    }
}
