//! Reproduces Fig. 11: average per-image upload delay vs network bitrate.
use bees_bench::args::ExpArgs;

fn main() {
    bees_bench::experiments::fig11_delay::run(&ExpArgs::from_env()).print();
}
