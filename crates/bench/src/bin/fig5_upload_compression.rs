//! Reproduces Fig. 5: quality/resolution compression vs bandwidth (and SSIM).
use bees_bench::args::ExpArgs;

fn main() {
    bees_bench::experiments::fig5_upload::run(&ExpArgs::from_env()).print();
}
