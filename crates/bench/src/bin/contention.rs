//! Shared-cell contention sweep: devices × cell capacity × scheduler policy.
use bees_bench::args::ExpArgs;

fn main() {
    bees_bench::experiments::contention::run(&ExpArgs::from_env()).print();
}
