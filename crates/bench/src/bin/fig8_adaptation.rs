//! Reproduces Fig. 8: BEES energy breakdown vs remaining energy.
use bees_bench::args::ExpArgs;

fn main() {
    bees_bench::experiments::fig8_adaptation::run(&ExpArgs::from_env()).print();
}
