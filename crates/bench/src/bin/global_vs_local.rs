//! Measures the paper's SIII-D claim: local (ORB) vs global (histogram)
//! feature accuracy for similarity detection.
use bees_bench::args::ExpArgs;

fn main() {
    bees_bench::experiments::global_vs_local::run(&ExpArgs::from_env()).print();
}
