//! AoS vs SoA descriptor hot-loop sweep; `--json-out` emits the
//! perf-trajectory metrics compared by `scripts/perf_check.py`.
use bees_bench::args::ExpArgs;

fn main() {
    bees_bench::experiments::descriptor_hotloop::run(&ExpArgs::from_env()).print();
}
