//! Responder-side retrieval: recall vs bytes vs joules across upload
//! policies (always-upload / thumbnail-only / server-only / pull-down).

use bees_bench::args::ExpArgs;
use bees_bench::experiments::retrieval;

fn main() {
    retrieval::run(&ExpArgs::from_env()).print();
}
