//! Fleet-scale server sweep: devices x index shards, BEES scheme over the
//! deterministic multi-device fleet session.
use bees_bench::args::ExpArgs;

fn main() {
    bees_bench::experiments::fleet_scaling::run(&ExpArgs::from_env()).print();
}
