//! Reproduces Fig. 4: similarity distribution and the derived EDR constants.
use bees_bench::args::ExpArgs;

fn main() {
    bees_bench::experiments::fig4_distribution::run(&ExpArgs::from_env()).print();
}
