//! Measures similarity-score distributions and prints the threshold
//! constants `BeesConfig` should use (see DESIGN.md §5).
use bees_bench::args::ExpArgs;

fn main() {
    bees_bench::experiments::calibrate::run(&ExpArgs::from_env()).print();
}
