//! Reproduces Fig. 3: bitmap compression vs precision & extraction energy.
use bees_bench::args::ExpArgs;

fn main() {
    bees_bench::experiments::fig3_compression::run(&ExpArgs::from_env()).print();
}
