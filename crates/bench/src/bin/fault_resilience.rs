//! Robustness experiment: every scheme on a faulty disaster channel, with
//! a salvage-on/off A/B at equal seeds; `--json-out` emits the
//! wasted/salvaged-joules trajectory compared by `scripts/perf_check.py`.
use bees_bench::args::ExpArgs;

fn main() {
    bees_bench::experiments::fault_resilience::run(&ExpArgs::from_env()).print();
}
