//! Robustness experiment: every scheme on a faulty disaster channel.
use bees_bench::args::ExpArgs;

fn main() {
    bees_bench::experiments::fault_resilience::run(&ExpArgs::from_env()).print();
}
