//! Reproduces Fig. 12: situation-awareness coverage, Direct Upload vs BEES.
use bees_bench::args::ExpArgs;

fn main() {
    bees_bench::experiments::fig12_coverage::run(&ExpArgs::from_env()).print();
}
