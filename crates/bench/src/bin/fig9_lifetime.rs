//! Reproduces Fig. 9: battery lifetime curves for all five schemes.
use bees_bench::args::ExpArgs;

fn main() {
    bees_bench::experiments::fig9_lifetime::run(&ExpArgs::from_env()).print();
}
