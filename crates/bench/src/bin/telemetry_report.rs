//! Per-stage telemetry breakdown of every scheme; `--trace-out <path>`
//! additionally writes the raw JSONL span trace.
use bees_bench::args::ExpArgs;

fn main() {
    bees_bench::experiments::telemetry_report::run(&ExpArgs::from_env()).print();
}
