//! Reproduces Fig. 6: precision of SIFT / PCA-SIFT / BEES(Ebat).
use bees_bench::args::ExpArgs;

fn main() {
    bees_bench::experiments::fig6_precision::run(&ExpArgs::from_env()).print();
}
