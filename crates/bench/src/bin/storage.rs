//! Storage tier: exact dedup + cold recompression, on/off arms at equal
//! seeds.

use bees_bench::args::ExpArgs;
use bees_bench::experiments::storage;

fn main() {
    storage::run(&ExpArgs::from_env()).print();
}
