//! Index backend query-throughput sweep (warmed scratch); `--json-out`
//! emits the perf-trajectory metrics compared by `scripts/perf_check.py`.
use bees_bench::args::ExpArgs;

fn main() {
    bees_bench::experiments::query_throughput::run(&ExpArgs::from_env()).print();
}
