//! Matcher throughput across `bees_runtime` thread counts; `--json-out`
//! emits the perf-trajectory metrics compared by `scripts/perf_check.py`.
use bees_bench::args::ExpArgs;

fn main() {
    bees_bench::experiments::runtime_scaling::run(&ExpArgs::from_env()).print();
}
