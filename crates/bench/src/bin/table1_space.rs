//! Reproduces Table I: feature space overheads.
use bees_bench::args::ExpArgs;

fn main() {
    bees_bench::experiments::table1_space::run(&ExpArgs::from_env()).print();
}
