//! Runs every paper experiment in sequence (Table I, Figs. 3-12).
//!
//! `--scale <f>` scales every workload; `--quick` caps it for smoke tests.
use bees_bench::args::ExpArgs;
use bees_bench::experiments as ex;

fn main() {
    let args = ExpArgs::from_env();
    println!(
        "BEES reproduction: full experiment suite (scale {}, seed {})",
        args.scale, args.seed
    );
    ex::calibrate::run(&args).print();
    ex::fig3_compression::run(&args).print();
    ex::fig4_distribution::run(&args).print();
    ex::fig5_upload::run(&args).print();
    ex::fig6_precision::run(&args).print();
    ex::table1_space::run(&args).print();
    let sweep = ex::redundancy_sweep::run(&args);
    sweep.print_energy();
    sweep.print_bandwidth();
    ex::fig8_adaptation::run(&args).print();
    ex::fig9_lifetime::run(&args).print();
    ex::fig11_delay::run(&args).print();
    ex::fig12_coverage::run(&args).print();
    ex::ablation_ssmm::run(&args).print();
    ex::global_vs_local::run(&args).print();
    ex::fault_resilience::run(&args).print();
    ex::telemetry_report::run(&args).print();
    ex::fleet_scaling::run(&args).print();
    ex::contention::run(&args).print();
    ex::retrieval::run(&args).print();
    ex::storage::run(&args).print();
    ex::descriptor_hotloop::run(&args).print();
    ex::query_throughput::run(&args).print();
    ex::runtime_scaling::run(&args).print();
    println!("\nAll experiments complete. See EXPERIMENTS.md for the paper-vs-measured record.");
}
