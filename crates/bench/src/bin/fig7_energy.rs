//! Reproduces Fig. 7: energy overhead vs cross-batch redundancy ratio.
use bees_bench::args::ExpArgs;

fn main() {
    bees_bench::experiments::redundancy_sweep::run(&ExpArgs::from_env()).print_energy();
}
