//! Ablation: SSMM's adaptive budget vs fixed budgets (DESIGN.md §4).
use bees_bench::args::ExpArgs;

fn main() {
    bees_bench::experiments::ablation_ssmm::run(&ExpArgs::from_env()).print();
}
