//! Minimal CLI argument handling shared by the experiment binaries.

/// Common experiment options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpArgs {
    /// Workload scale factor; 1.0 is the binary's default size (already
    /// scaled down from the paper for wall-clock sanity).
    pub scale: f64,
    /// Workload seed.
    pub seed: u64,
    /// Quick mode: a much smaller run for smoke-testing.
    pub quick: bool,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            scale: 1.0,
            seed: 0xBEE5,
            quick: false,
        }
    }
}

impl ExpArgs {
    /// Parses `--scale <f>`, `--seed <n>`, and `--quick` from an iterator
    /// of arguments (unknown arguments are ignored with a warning).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = ExpArgs::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        out.scale = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        out.seed = v;
                    }
                }
                "--quick" => out.quick = true,
                other => eprintln!("warning: ignoring unknown argument `{other}`"),
            }
        }
        if out.quick {
            out.scale = out.scale.min(0.2);
        }
        out
    }

    /// Parses from the process environment (skipping the binary name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Scales a count, keeping at least `min`.
    pub fn scaled(&self, base: usize, min: usize) -> usize {
        ((base as f64 * self.scale).round() as usize).max(min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> ExpArgs {
        ExpArgs::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.scale, 1.0);
        assert!(!a.quick);
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&["--scale", "0.5", "--seed", "99"]);
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.seed, 99);
    }

    #[test]
    fn quick_caps_scale() {
        let a = parse(&["--scale", "2.0", "--quick"]);
        assert!(a.quick);
        assert!(a.scale <= 0.2);
    }

    #[test]
    fn scaled_respects_minimum() {
        let a = parse(&["--scale", "0.01"]);
        assert_eq!(a.scaled(100, 4), 4);
        let b = parse(&["--scale", "0.5"]);
        assert_eq!(b.scaled(100, 4), 50);
    }
}
