//! Minimal CLI argument handling shared by the experiment binaries.

use std::path::PathBuf;

use bees_core::schemes::SchemeKind;

/// Common experiment options.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpArgs {
    /// Workload scale factor; 1.0 is the binary's default size (already
    /// scaled down from the paper for wall-clock sanity).
    pub scale: f64,
    /// Workload seed.
    pub seed: u64,
    /// Quick mode: a much smaller run for smoke-testing.
    pub quick: bool,
    /// When set, experiments that support tracing write a JSONL telemetry
    /// trace (spans on the client's virtual clock) to this path.
    pub trace_out: Option<PathBuf>,
    /// Optional scheme subset (`--schemes bees,mrc`); `None` means the
    /// experiment's default roster.
    pub schemes: Option<Vec<SchemeKind>>,
    /// When set, experiments that produce machine-readable results (e.g.
    /// `fleet_scaling`) also write them as JSON lines to this path.
    pub json_out: Option<PathBuf>,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            scale: 1.0,
            seed: 0xBEE5,
            quick: false,
            trace_out: None,
            schemes: None,
            json_out: None,
        }
    }
}

impl ExpArgs {
    /// Parses `--scale <f>`, `--seed <n>`, `--quick`, `--trace-out <path>`,
    /// `--json-out <path>`, and `--schemes <a,b,...>` from an iterator of
    /// arguments (unknown arguments are ignored with a warning).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = ExpArgs::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        out.scale = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        out.seed = v;
                    }
                }
                "--quick" => out.quick = true,
                "--trace-out" => {
                    if let Some(v) = it.next() {
                        out.trace_out = Some(PathBuf::from(v));
                    }
                }
                "--json-out" => {
                    if let Some(v) = it.next() {
                        out.json_out = Some(PathBuf::from(v));
                    }
                }
                "--schemes" => {
                    if let Some(v) = it.next() {
                        let mut kinds = Vec::new();
                        for part in v.split(',').filter(|p| !p.trim().is_empty()) {
                            match part.parse::<SchemeKind>() {
                                Ok(kind) => kinds.push(kind),
                                Err(e) => eprintln!("warning: {e}"),
                            }
                        }
                        if !kinds.is_empty() {
                            out.schemes = Some(kinds);
                        }
                    }
                }
                other => eprintln!("warning: ignoring unknown argument `{other}`"),
            }
        }
        if out.quick {
            out.scale = out.scale.min(0.2);
        }
        out
    }

    /// Parses from the process environment (skipping the binary name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Scales a count, keeping at least `min`.
    pub fn scaled(&self, base: usize, min: usize) -> usize {
        ((base as f64 * self.scale).round() as usize).max(min)
    }

    /// The schemes to run: the `--schemes` subset if given, otherwise the
    /// full roster.
    pub fn scheme_roster(&self) -> Vec<SchemeKind> {
        self.schemes
            .clone()
            .unwrap_or_else(|| SchemeKind::ALL.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> ExpArgs {
        ExpArgs::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.scale, 1.0);
        assert!(!a.quick);
        assert!(a.trace_out.is_none());
        assert!(a.schemes.is_none());
        assert!(a.json_out.is_none());
    }

    #[test]
    fn parses_json_out() {
        let a = parse(&["--json-out", "fleet.jsonl"]);
        assert_eq!(
            a.json_out.as_deref(),
            Some(std::path::Path::new("fleet.jsonl"))
        );
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&[
            "--scale",
            "0.5",
            "--seed",
            "99",
            "--trace-out",
            "trace.jsonl",
            "--schemes",
            "bees,mrc",
        ]);
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.seed, 99);
        assert_eq!(
            a.trace_out.as_deref(),
            Some(std::path::Path::new("trace.jsonl"))
        );
        assert_eq!(a.schemes, Some(vec![SchemeKind::Bees, SchemeKind::Mrc]));
    }

    #[test]
    fn quick_caps_scale() {
        let a = parse(&["--scale", "2.0", "--quick"]);
        assert!(a.quick);
        assert!(a.scale <= 0.2);
    }

    #[test]
    fn scaled_respects_minimum() {
        let a = parse(&["--scale", "0.01"]);
        assert_eq!(a.scaled(100, 4), 4);
        let b = parse(&["--scale", "0.5"]);
        assert_eq!(b.scaled(100, 4), 50);
    }

    #[test]
    fn scheme_roster_defaults_to_all() {
        let a = parse(&[]);
        assert_eq!(a.scheme_roster(), SchemeKind::ALL.to_vec());
        let b = parse(&["--schemes", "direct,bees-ea"]);
        assert_eq!(
            b.scheme_roster(),
            vec![SchemeKind::DirectUpload, SchemeKind::BeesEa]
        );
    }

    #[test]
    fn bad_scheme_names_are_skipped() {
        let a = parse(&["--schemes", "bees,smarteyes"]);
        // The valid kind survives; the typo is warned about and dropped.
        assert_eq!(a.schemes, Some(vec![SchemeKind::Bees]));
    }
}
