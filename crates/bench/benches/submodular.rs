//! SSMM ablations: naive vs lazy greedy, and the full summarize pipeline.

use bees_submodular::{
    greedy_maximize, lazy_greedy_maximize, CoverageFunction, SimilarityGraph, Ssmm, SsmmConfig,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn random_graph(n: usize, seed: u64) -> SimilarityGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    SimilarityGraph::from_pairwise(n, |_, _| {
        if rng.gen_bool(0.3) {
            rng.gen_range(0.0..0.6)
        } else {
            0.0
        }
    })
}

fn bench_greedy_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy");
    group.sample_size(20);
    for n in [40usize, 100] {
        let g = random_graph(n, 3);
        let budget = n / 3;
        group.bench_with_input(BenchmarkId::new("naive", n), &g, |b, g| {
            b.iter(|| {
                let f = CoverageFunction::new(g);
                black_box(greedy_maximize(&f, budget))
            })
        });
        group.bench_with_input(BenchmarkId::new("lazy", n), &g, |b, g| {
            b.iter(|| {
                let f = CoverageFunction::new(g);
                black_box(lazy_greedy_maximize(&f, budget))
            })
        });
    }
    group.finish();
}

fn bench_ssmm_summarize(c: &mut Criterion) {
    let g = random_graph(100, 9);
    let ssmm = Ssmm::new(SsmmConfig::default());
    c.bench_function("ssmm_summarize_100", |b| {
        b.iter(|| black_box(ssmm.summarize(black_box(&g), 0.12)))
    });
}

criterion_group!(benches, bench_greedy_variants, bench_ssmm_summarize);
criterion_main!(benches);
