//! DCT codec microbenchmarks: encode/decode at the qualities AIU uses.

use bees_datasets::{Scene, SceneConfig, ViewJitter};
use bees_image::codec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_encode(c: &mut Criterion) {
    let img = Scene::new(5, SceneConfig::default()).render(&ViewJitter::identity());
    let mut group = c.benchmark_group("codec_encode_rgb");
    group.sample_size(20);
    // Quality 15 is BEES' upload operating point (proportion 0.85).
    for q in [15u8, 50, 90] {
        group.bench_with_input(BenchmarkId::from_parameter(q), &img, |b, img| {
            b.iter(|| black_box(codec::encode_rgb(black_box(img), q).expect("valid quality")))
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let img = Scene::new(6, SceneConfig::default()).render(&ViewJitter::identity());
    let encoded = codec::encode_rgb(&img, 50).expect("valid quality");
    c.bench_function("codec_decode_rgb_q50", |b| {
        b.iter(|| black_box(codec::decode_rgb(black_box(&encoded)).expect("own bitstream")))
    });
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
