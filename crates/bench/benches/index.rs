//! Server-index ablation: exact linear scan vs multi-index hashing for
//! max-similarity queries as the index grows.

use bees_features::descriptor::BinaryDescriptor;
use bees_features::similarity::SimilarityConfig;
use bees_features::{Descriptors, ImageFeatures, Keypoint};
use bees_index::vocab::{VocabConfig, VocabIndex, Vocabulary};
use bees_index::{FeatureIndex, ImageId, LinearIndex, MihIndex};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn random_features(rng: &mut ChaCha8Rng, n: usize) -> ImageFeatures {
    let descs: Vec<BinaryDescriptor> = (0..n)
        .map(|_| {
            let mut bytes = [0u8; 32];
            rng.fill(&mut bytes);
            BinaryDescriptor::from_bytes(bytes)
        })
        .collect();
    ImageFeatures {
        keypoints: descs.iter().map(|_| Keypoint::default()).collect(),
        descriptors: Descriptors::Binary(descs),
    }
}

fn bench_index_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_max_similarity");
    group.sample_size(10);
    for size in [50usize, 200] {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut linear = LinearIndex::new(SimilarityConfig::default());
        let mut mih = MihIndex::new(SimilarityConfig::default());
        // Train the vocabulary on the first few images' descriptors.
        let training: Vec<_> = (0..8)
            .flat_map(|_| {
                let f = random_features(&mut rng, 150);
                if let bees_features::Descriptors::Binary(d) = f.descriptors {
                    d
                } else {
                    unreachable!()
                }
            })
            .collect();
        let vocab = Vocabulary::train(&training, VocabConfig::default());
        let mut vt = VocabIndex::new(SimilarityConfig::default(), vocab);
        for i in 0..size {
            let f = random_features(&mut rng, 150);
            linear.insert(ImageId(i as u64), f.clone());
            mih.insert(ImageId(i as u64), f.clone());
            vt.insert(ImageId(i as u64), f);
        }
        let query = random_features(&mut rng, 150);
        group.bench_with_input(BenchmarkId::new("linear", size), &query, |b, q| {
            b.iter(|| black_box(linear.max_similarity(black_box(q))))
        });
        group.bench_with_input(BenchmarkId::new("mih", size), &query, |b, q| {
            b.iter(|| black_box(mih.max_similarity(black_box(q))))
        });
        group.bench_with_input(BenchmarkId::new("vocab_tree", size), &query, |b, q| {
            b.iter(|| black_box(vt.max_similarity(black_box(q))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index_query);
criterion_main!(benches);
