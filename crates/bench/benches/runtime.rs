//! Scaling benchmarks for the deterministic runtime.
//!
//! Three questions: (1) what does the chunked fan-out cost on work too
//! small to parallelize, (2) how does ORB extraction scale with the worker
//! count, and (3) how does brute-force Hamming matching scale. Thread
//! counts are swept with `bees_runtime::set_threads` inside one process;
//! results at every count are bit-identical by construction, so the bench
//! also doubles as a determinism smoke test.

use bees_features::matcher::{match_binary, MatchConfig};
use bees_features::orb::{Orb, OrbConfig};
use bees_features::FeatureExtractor;
use bees_image::GrayImage;
use bees_runtime::{set_threads, Runtime};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// A 384x288 textured frame, the upper end of the paper's phone imagery.
fn frame() -> GrayImage {
    GrayImage::from_fn(384, 288, |x, y| {
        let checker = if (x / 14 + y / 12) % 2 == 0 {
            55i32
        } else {
            -55
        };
        let wave = (45.0 * ((x as f32) * 0.19).sin() + 35.0 * ((y as f32) * 0.23).cos()) as i32;
        (128 + checker + wave).clamp(0, 255) as u8
    })
}

fn random_descriptors(n: usize, seed: u64) -> Vec<bees_features::descriptor::BinaryDescriptor> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut bytes = [0u8; 32];
            rng.fill(&mut bytes);
            bees_features::descriptor::BinaryDescriptor::from_bytes(bytes)
        })
        .collect()
}

/// Fixed overhead of the chunked dispatch against a plain sequential map,
/// on work items far too cheap to be worth distributing.
fn bench_par_map_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_map_overhead");
    let n = 4096usize;
    group.bench_function("seq_map", |b| {
        b.iter(|| {
            black_box(
                (0..n)
                    .map(|i| i.wrapping_mul(2654435761))
                    .collect::<Vec<_>>(),
            )
        })
    });
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("par_map", threads), &threads, |b, &t| {
            let rt = Runtime::new(t);
            b.iter(|| black_box(rt.par_map_range(n, |i| i.wrapping_mul(2654435761))))
        });
    }
    group.finish();
}

/// ORB extraction at 1/2/4/8 workers (per-level detection, level blurs and
/// per-candidate BRIEF all ride the runtime).
fn bench_orb_scaling(c: &mut Criterion) {
    let img = frame();
    let orb = Orb::new(OrbConfig {
        n_features: 300,
        ..OrbConfig::default()
    });
    let mut group = c.benchmark_group("orb_threads");
    group.sample_size(20);
    for threads in THREAD_SWEEP {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            set_threads(t);
            b.iter(|| black_box(orb.extract(black_box(&img))));
            set_threads(0);
        });
    }
    group.finish();
}

/// Brute-force 256-bit Hamming matching (the CBRD/SSMM inner loop) at
/// 1/2/4/8 workers; each query row is an independent scan.
fn bench_matching_scaling(c: &mut Criterion) {
    let query = random_descriptors(400, 11);
    let train = random_descriptors(400, 23);
    let cfg = MatchConfig::default();
    let mut group = c.benchmark_group("match_binary_threads");
    group.sample_size(30);
    for threads in THREAD_SWEEP {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            set_threads(t);
            b.iter(|| black_box(match_binary(black_box(&query), black_box(&train), &cfg)));
            set_threads(0);
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_par_map_overhead,
    bench_orb_scaling,
    bench_matching_scaling
);
criterion_main!(benches);
