//! ORB extraction microbenchmarks, including the EAC ablation: extraction
//! cost at the bitmap-compression proportions the energy-aware scheme
//! chooses at various battery levels.

use bees_datasets::{Scene, SceneConfig, ViewJitter};
use bees_features::orb::Orb;
use bees_features::sift::Sift;
use bees_features::FeatureExtractor;
use bees_image::resize;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_orb_extraction(c: &mut Criterion) {
    let img = Scene::new(1, SceneConfig::default())
        .render(&ViewJitter::identity())
        .to_gray();
    let orb = Orb::default();
    let mut group = c.benchmark_group("orb_extract");
    group.sample_size(10);
    // Ablation: EAC bitmap compression before extraction. C = 0 is
    // full-quality; C = 0.4 is the empty-battery operating point.
    for proportion in [0.0f64, 0.2, 0.4] {
        let compressed = resize::compress_bitmap(&img, proportion).expect("valid proportion");
        group.bench_with_input(
            BenchmarkId::new("compression", format!("{proportion:.1}")),
            &compressed,
            |b, input| b.iter(|| black_box(orb.extract(black_box(input)))),
        );
    }
    group.finish();
}

fn bench_sift_vs_orb(c: &mut Criterion) {
    // The paper picks ORB because it is orders cheaper than SIFT; measure
    // the actual wall-clock gap of our implementations.
    let img = Scene::new(
        2,
        SceneConfig {
            width: 192,
            height: 144,
            n_shapes: 16,
            texture_amp: 10.0,
        },
    )
    .render(&ViewJitter::identity())
    .to_gray();
    let orb = Orb::default();
    let sift = Sift::default();
    let mut group = c.benchmark_group("extractor_comparison");
    group.sample_size(10);
    group.bench_function("orb", |b| {
        b.iter(|| black_box(orb.extract(black_box(&img))))
    });
    group.bench_function("sift", |b| {
        b.iter(|| black_box(sift.extract(black_box(&img))))
    });
    group.finish();
}

criterion_group!(benches, bench_orb_extraction, bench_sift_vs_orb);
criterion_main!(benches);
