//! Descriptor matching and Jaccard similarity microbenchmarks.

use bees_features::descriptor::BinaryDescriptor;
use bees_features::matcher::{match_binary, MatchConfig};
use bees_features::similarity::{jaccard_similarity, SimilarityConfig};
use bees_features::{Descriptors, ImageFeatures, Keypoint};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn random_descriptors(rng: &mut ChaCha8Rng, n: usize) -> Vec<BinaryDescriptor> {
    (0..n)
        .map(|_| {
            let mut bytes = [0u8; 32];
            rng.fill(&mut bytes);
            BinaryDescriptor::from_bytes(bytes)
        })
        .collect()
}

fn features(descs: Vec<BinaryDescriptor>) -> ImageFeatures {
    ImageFeatures {
        keypoints: descs.iter().map(|_| Keypoint::default()).collect(),
        descriptors: Descriptors::Binary(descs),
    }
}

fn bench_hamming_matching(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut group = c.benchmark_group("hamming_match");
    group.sample_size(20);
    for n in [50usize, 150, 500] {
        let a = random_descriptors(&mut rng, n);
        let b = random_descriptors(&mut rng, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(a, b), |bench, (a, b)| {
            bench.iter(|| {
                black_box(match_binary(
                    black_box(a),
                    black_box(b),
                    &MatchConfig::default(),
                ))
            })
        });
    }
    group.finish();
}

fn bench_jaccard_similarity(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let a = features(random_descriptors(&mut rng, 150));
    let b = features(random_descriptors(&mut rng, 150));
    let cfg = SimilarityConfig::default();
    c.bench_function("jaccard_similarity_150", |bench| {
        bench.iter(|| black_box(jaccard_similarity(black_box(&a), black_box(&b), &cfg)))
    });
}

criterion_group!(benches, bench_hamming_matching, bench_jaccard_similarity);
criterion_main!(benches);
