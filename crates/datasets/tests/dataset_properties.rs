//! Property-based tests of the synthetic datasets: determinism, structural
//! guarantees, and bound-respecting generation for arbitrary seeds and
//! (small) configurations.

use bees_datasets::{
    disaster_batch, kentucky_like, ParisConfig, ParisLike, Scene, SceneConfig, ViewJitter,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_scene_config() -> impl Strategy<Value = SceneConfig> {
    ((48u32..128), (48u32..96), (1usize..12), (0.0f32..15.0)).prop_map(
        |(width, height, n_shapes, texture_amp)| SceneConfig {
            width,
            height,
            n_shapes,
            texture_amp,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn scene_rendering_is_deterministic(seed in any::<u64>(), cfg in arb_scene_config()) {
        let a = Scene::new(seed, cfg).render(&ViewJitter::identity());
        let b = Scene::new(seed, cfg).render(&ViewJitter::identity());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn jittered_views_differ_from_canonical(seed in any::<u64>(), cfg in arb_scene_config()) {
        let scene = Scene::new(seed, cfg);
        let canonical = scene.render(&ViewJitter::identity());
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 1);
        let jittered = scene.render(&ViewJitter::sample(&mut rng));
        prop_assert_eq!(canonical.dimensions(), jittered.dimensions());
        prop_assert_ne!(canonical, jittered);
    }

    #[test]
    fn kentucky_groups_have_stable_structure(seed in any::<u64>(), n in 1usize..4, cfg in arb_scene_config()) {
        let groups = kentucky_like(seed, n, cfg);
        prop_assert_eq!(groups.len(), n);
        for g in &groups {
            prop_assert_eq!(g.images.len(), 4);
            for img in &g.images {
                prop_assert_eq!(img.dimensions(), (cfg.width, cfg.height));
            }
        }
    }

    #[test]
    fn disaster_batch_counts_always_add_up(
        seed in any::<u64>(),
        n in 2usize..12,
        cross in 0.0f64..1.0,
        cfg in arb_scene_config(),
    ) {
        let n_cross = (cross * n as f64).round() as usize;
        let extras = (n / 4).min(n.saturating_sub(n_cross) / 2);
        let b = disaster_batch(seed, n, extras, cross, cfg);
        prop_assert_eq!(b.batch.len(), n);
        prop_assert_eq!(b.server_preload.len(), n_cross);
        prop_assert_eq!(b.in_batch_redundant_count(), extras);
        // Ground-truth indices are valid and disjoint between kinds.
        for &i in &b.cross_batch_redundant {
            prop_assert!(i < n);
            for g in &b.in_batch_groups {
                prop_assert!(!g.contains(&i), "index {} in both redundancy kinds", i);
            }
        }
    }

    #[test]
    fn paris_assignment_is_total_and_in_bounds(seed in any::<u64>(), n_loc in 1usize..10, n_img in 1usize..40) {
        let cfg = ParisConfig {
            n_locations: n_loc,
            n_images: n_img,
            scene: SceneConfig { width: 48, height: 48, n_shapes: 3, texture_amp: 5.0 },
            ..ParisConfig::default()
        };
        let p = ParisLike::generate(seed, cfg);
        prop_assert_eq!(p.len(), n_img);
        for i in 0..p.len() {
            prop_assert!(p.location_of(i) < n_loc);
        }
        prop_assert!(p.occupied_locations() <= n_loc.min(n_img));
        let (lon0, lon1, lat0, lat1) = cfg.bbox;
        for l in 0..n_loc {
            let (lon, lat) = p.location_coords(l);
            prop_assert!(lon >= lon0 && lon <= lon1);
            prop_assert!(lat >= lat0 && lat <= lat1);
        }
    }
}
