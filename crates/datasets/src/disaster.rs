//! Disaster-like upload batches with controlled redundancy.
//!
//! The Fig. 7/8/10/11 experiments upload a 100-image batch while varying
//! the **cross-batch redundancy ratio** (fraction of batch images that
//! already have similar images in the server) and keeping **10 in-batch
//! similar images** that have no server-side counterpart. This module
//! builds exactly that workload.

use crate::scene::{Scene, SceneConfig, ViewJitter};
use bees_image::RgbImage;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A synthetic upload batch with known redundancy structure.
#[derive(Debug, Clone)]
pub struct DisasterBatch {
    /// The images the client will upload, in upload order.
    pub batch: Vec<RgbImage>,
    /// Images to pre-insert into the server index: one similar view per
    /// cross-batch-redundant batch image.
    pub server_preload: Vec<RgbImage>,
    /// Indices (into `batch`) of images whose scene also appears in
    /// `server_preload` — the ground-truth cross-batch redundant set.
    pub cross_batch_redundant: Vec<usize>,
    /// Groups of batch indices that are in-batch similar (same scene,
    /// absent from the server).
    pub in_batch_groups: Vec<Vec<usize>>,
}

impl DisasterBatch {
    /// The realized cross-batch redundancy ratio.
    pub fn cross_ratio(&self) -> f64 {
        self.cross_batch_redundant.len() as f64 / self.batch.len() as f64
    }

    /// Number of in-batch redundant images (batch size minus the number of
    /// distinct scenes).
    pub fn in_batch_redundant_count(&self) -> usize {
        self.in_batch_groups.iter().map(|g| g.len() - 1).sum()
    }
}

/// Builds a batch of `n` images where:
///
/// * `round(cross_ratio · n)` images have a similar view pre-loaded on the
///   server (the paper's cross-batch redundancy),
/// * `n_in_batch_extra` images are *additional views* of scenes already in
///   the batch but absent from the server (the paper's in-batch similars —
///   the batch contains `n - n_in_batch_extra` distinct scenes).
///
/// # Panics
///
/// Panics if the counts cannot fit — each in-batch extra needs a distinct
/// base scene outside the cross-redundant prefix, so
/// `2·n_in_batch_extra + round(cross_ratio·n)` must not exceed `n` — or if
/// `n == 0` or `cross_ratio` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use bees_datasets::{disaster_batch, SceneConfig};
///
/// let cfg = SceneConfig { width: 96, height: 72, n_shapes: 10, texture_amp: 8.0 };
/// let b = disaster_batch(7, 20, 2, 0.25, cfg);
/// assert_eq!(b.batch.len(), 20);
/// assert_eq!(b.server_preload.len(), 5);
/// assert_eq!(b.in_batch_redundant_count(), 2);
/// ```
pub fn disaster_batch(
    seed: u64,
    n: usize,
    n_in_batch_extra: usize,
    cross_ratio: f64,
    config: SceneConfig,
) -> DisasterBatch {
    assert!(n > 0, "batch must contain at least one image");
    assert!(
        (0.0..=1.0).contains(&cross_ratio),
        "cross_ratio must be in [0, 1]"
    );
    let n_cross = (cross_ratio * n as f64).round() as usize;
    assert!(
        n_cross + 2 * n_in_batch_extra <= n,
        "cannot fit {n_cross} cross-redundant plus {n_in_batch_extra} in-batch extras in {n} \
         (each extra needs its own base scene outside the cross-redundant prefix)"
    );
    let n_unique = n - n_in_batch_extra;

    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD15A_57E2);
    let scenes: Vec<Scene> = (0..n_unique)
        .map(|i| {
            let s = seed.wrapping_mul(7_368_787).wrapping_add(i as u64);
            Scene::new(s, config)
        })
        .collect();

    let mut batch: Vec<RgbImage> = Vec::with_capacity(n);
    // One canonical view per distinct scene.
    for scene in &scenes {
        batch.push(scene.render(&ViewJitter::identity()));
    }

    // Cross-batch redundancy: server holds a jittered view of the FIRST
    // n_cross scenes (and those scenes are never duplicated in-batch, so
    // the two redundancy kinds do not overlap).
    let mut server_preload = Vec::with_capacity(n_cross);
    for scene in scenes.iter().take(n_cross) {
        server_preload.push(scene.render(&ViewJitter::sample(&mut rng)));
    }
    let cross_batch_redundant: Vec<usize> = (0..n_cross).collect();

    // In-batch similars: extra views of the LAST scenes (outside the
    // cross-redundant prefix).
    let mut in_batch_groups = Vec::with_capacity(n_in_batch_extra);
    for k in 0..n_in_batch_extra {
        let base = n_unique - 1 - k; // distinct scenes from the tail
        debug_assert!(base >= n_cross, "guaranteed by the capacity assert above");
        let extra = scenes[base].render(&ViewJitter::sample(&mut rng));
        in_batch_groups.push(vec![base, batch.len()]);
        batch.push(extra);
    }

    DisasterBatch {
        batch,
        server_preload,
        cross_batch_redundant,
        in_batch_groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bees_features::orb::Orb;
    use bees_features::similarity::{jaccard_similarity, SimilarityConfig};
    use bees_features::FeatureExtractor;

    fn small() -> SceneConfig {
        SceneConfig {
            width: 96,
            height: 72,
            n_shapes: 10,
            texture_amp: 8.0,
        }
    }

    #[test]
    fn counts_match_request() {
        let b = disaster_batch(1, 40, 4, 0.5, small());
        assert_eq!(b.batch.len(), 40);
        assert_eq!(b.server_preload.len(), 20);
        assert_eq!(b.cross_batch_redundant.len(), 20);
        assert_eq!(b.in_batch_redundant_count(), 4);
        assert!((b.cross_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_redundancy_batch() {
        let b = disaster_batch(2, 10, 0, 0.0, small());
        assert!(b.server_preload.is_empty());
        assert!(b.in_batch_groups.is_empty());
        assert_eq!(b.batch.len(), 10);
    }

    #[test]
    fn batches_are_deterministic() {
        let a = disaster_batch(3, 12, 2, 0.25, small());
        let b = disaster_batch(3, 12, 2, 0.25, small());
        assert_eq!(a.batch, b.batch);
        assert_eq!(a.server_preload, b.server_preload);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn overfull_batch_panics() {
        let _ = disaster_batch(1, 10, 6, 0.5, small());
    }

    #[test]
    fn preload_is_similar_to_its_batch_image() {
        let b = disaster_batch(5, 8, 0, 0.25, small());
        let orb = Orb::default();
        let cfg = SimilarityConfig::default();
        for (k, &idx) in b.cross_batch_redundant.iter().enumerate() {
            let fb = orb.extract(&b.batch[idx].to_gray());
            let fs = orb.extract(&b.server_preload[k].to_gray());
            let sim = jaccard_similarity(&fb, &fs, &cfg);
            assert!(sim > 0.05, "preload {k} not similar enough: {sim}");
        }
    }

    #[test]
    fn in_batch_groups_reference_same_scene() {
        let b = disaster_batch(6, 12, 2, 0.25, small());
        let orb = Orb::default();
        let cfg = SimilarityConfig::default();
        for g in &b.in_batch_groups {
            assert_eq!(g.len(), 2);
            let f0 = orb.extract(&b.batch[g[0]].to_gray());
            let f1 = orb.extract(&b.batch[g[1]].to_gray());
            let sim = jaccard_similarity(&f0, &f1, &cfg);
            assert!(sim > 0.05, "in-batch pair {g:?} not similar: {sim}");
        }
    }
}
