#![warn(missing_docs)]

//! Synthetic stand-ins for the BEES paper's three image datasets.
//!
//! The paper evaluates on the Kentucky benchmark (10,200 photos in groups
//! of 4 similar views), 1,000 Nepal-earthquake photos, and 501,356
//! geotagged Paris photos. None of those can ship with this reproduction,
//! so this crate generates deterministic synthetic equivalents that
//! exercise the identical code paths:
//!
//! * [`scene`] — a seeded scene renderer producing structured images
//!   (gradients, shapes, texture) with enough corners for ORB/SIFT, plus
//!   [`ViewJitter`](scene::ViewJitter) to render *similar views* of the
//!   same scene (small translation/brightness/noise perturbations — the
//!   synthetic analogue of "4 images taken from the same object"),
//! * [`kentucky`] — groups of 4 similar views; drives the precision
//!   experiments (Figs. 3, 4, 6),
//! * [`disaster`] — upload batches with controlled cross-batch redundancy
//!   ratio and in-batch similar images; drives Figs. 7, 8, 10, 11,
//! * [`paris`] — a geotagged corpus with Zipf-distributed images per
//!   location inside a bounding box; drives the lifetime and coverage
//!   experiments (Figs. 9, 12).
//!
//! Everything is seeded and deterministic: the same seed always produces
//! byte-identical images.

pub mod disaster;
pub mod kentucky;
pub mod paris;
pub mod scene;

pub use disaster::{disaster_batch, DisasterBatch};
pub use kentucky::{kentucky_like, KentuckyGroup};
pub use paris::{GeoImage, ParisConfig, ParisLike};
pub use scene::{Scene, SceneConfig, ViewJitter};
