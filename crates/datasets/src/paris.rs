//! The Paris-like geotagged corpus.
//!
//! The real Paris dataset is 501,356 Flickr/Panoramio photos inside a
//! geographic bounding box, with a heavily skewed images-per-location
//! distribution (the paper's densest location has 5,399 images). This
//! generator reproduces the structure at configurable scale: `n_locations`
//! points inside the paper's bounding box, a Zipf images-per-location law,
//! and per-location scenes so that photos *of the same location are
//! similar* — exactly why redundancy elimination helps coverage (Fig. 12).
//!
//! Images are rendered lazily by index; a corpus of tens of thousands of
//! images costs nothing until rendered.

use crate::scene::{Scene, SceneConfig, ViewJitter};
use bees_image::RgbImage;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration for [`ParisLike`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParisConfig {
    /// Bounding box `(lon_min, lon_max, lat_min, lat_max)`; the default is
    /// the paper's test region (2.31–2.34° E, 48.855–48.872° N).
    pub bbox: (f64, f64, f64, f64),
    /// Number of unique photo locations.
    pub n_locations: usize,
    /// Total number of images.
    pub n_images: usize,
    /// Zipf exponent for the images-per-location law (1.0 ≈ classic Zipf).
    pub zipf_s: f64,
    /// Scene parameters for the rendered images.
    pub scene: SceneConfig,
}

impl Default for ParisConfig {
    fn default() -> Self {
        ParisConfig {
            bbox: (2.31, 2.34, 48.855, 48.872),
            n_locations: 400,
            n_images: 1200,
            zipf_s: 1.0,
            scene: SceneConfig::default(),
        }
    }
}

/// One geotagged image reference.
#[derive(Debug, Clone, PartialEq)]
pub struct GeoImage {
    /// Index within the corpus.
    pub index: usize,
    /// Longitude in degrees east.
    pub lon: f64,
    /// Latitude in degrees north.
    pub lat: f64,
    /// The location this photo was taken at.
    pub location_id: usize,
    /// The rendered image.
    pub image: RgbImage,
}

/// A lazily rendered geotagged corpus.
///
/// # Examples
///
/// ```
/// use bees_datasets::{ParisConfig, ParisLike, SceneConfig};
///
/// let corpus = ParisLike::generate(1, ParisConfig {
///     n_locations: 10,
///     n_images: 30,
///     scene: SceneConfig { width: 96, height: 72, n_shapes: 8, texture_amp: 8.0 },
///     ..ParisConfig::default()
/// });
/// assert_eq!(corpus.len(), 30);
/// let img = corpus.image(0);
/// assert!(img.lon >= 2.31 && img.lon <= 2.34);
/// ```
#[derive(Debug, Clone)]
pub struct ParisLike {
    seed: u64,
    config: ParisConfig,
    /// `(lon, lat)` per location.
    locations: Vec<(f64, f64)>,
    /// Location id per image index.
    assignment: Vec<usize>,
}

impl ParisLike {
    /// Generates the corpus skeleton (locations + assignment, no pixels).
    ///
    /// # Panics
    ///
    /// Panics if `n_locations == 0`, `n_images == 0`, or the bounding box
    /// is inverted.
    pub fn generate(seed: u64, config: ParisConfig) -> Self {
        assert!(config.n_locations > 0, "need at least one location");
        assert!(config.n_images > 0, "need at least one image");
        let (lon0, lon1, lat0, lat1) = config.bbox;
        assert!(lon0 < lon1 && lat0 < lat1, "bounding box is inverted");
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9A15_1234);
        let locations: Vec<(f64, f64)> = (0..config.n_locations)
            .map(|_| (rng.gen_range(lon0..lon1), rng.gen_range(lat0..lat1)))
            .collect();
        // Zipf weights over locations (location 0 is the densest).
        let weights: Vec<f64> = (0..config.n_locations)
            .map(|r| 1.0 / ((r + 1) as f64).powf(config.zipf_s))
            .collect();
        let total: f64 = weights.iter().sum();
        // Cumulative distribution for weighted sampling.
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }
        let assignment: Vec<usize> = (0..config.n_images)
            .map(|_| {
                let u: f64 = rng.gen();
                cdf.partition_point(|&c| c < u).min(config.n_locations - 1)
            })
            .collect();
        ParisLike {
            seed,
            config,
            locations,
            assignment,
        }
    }

    /// Number of images in the corpus.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Whether the corpus is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// The configuration used to generate the corpus.
    pub fn config(&self) -> &ParisConfig {
        &self.config
    }

    /// Number of distinct locations that have at least one image.
    pub fn occupied_locations(&self) -> usize {
        let mut seen = vec![false; self.config.n_locations];
        for &l in &self.assignment {
            seen[l] = true;
        }
        seen.iter().filter(|&&s| s).count()
    }

    /// Location id of image `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn location_of(&self, i: usize) -> usize {
        self.assignment[i]
    }

    /// Coordinates of a location.
    ///
    /// # Panics
    ///
    /// Panics if `location_id >= n_locations`.
    pub fn location_coords(&self, location_id: usize) -> (f64, f64) {
        self.locations[location_id]
    }

    /// Renders image `i`. Images at the same location are jittered views of
    /// that location's scene.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn image(&self, i: usize) -> GeoImage {
        let location_id = self.assignment[i];
        let (lon, lat) = self.locations[location_id];
        let scene_seed = self
            .seed
            .wrapping_mul(86_028_121)
            .wrapping_add(location_id as u64);
        let scene = Scene::new(scene_seed, self.config.scene);
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed.wrapping_mul(31).wrapping_add(i as u64));
        // First image rendered for a location is not necessarily canonical;
        // each photo is an independent jittered view.
        let image = scene.render(&ViewJitter::sample(&mut rng));
        GeoImage {
            index: i,
            lon,
            lat,
            location_id,
            image,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ParisConfig {
        ParisConfig {
            n_locations: 20,
            n_images: 100,
            scene: SceneConfig {
                width: 96,
                height: 72,
                n_shapes: 8,
                texture_amp: 8.0,
            },
            ..ParisConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ParisLike::generate(4, small());
        let b = ParisLike::generate(4, small());
        assert_eq!(a.len(), b.len());
        for i in [0usize, 17, 99] {
            assert_eq!(a.location_of(i), b.location_of(i));
            assert_eq!(a.image(i).image, b.image(i).image);
        }
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let p = ParisLike::generate(1, small());
        let mut counts = vec![0usize; 20];
        for i in 0..p.len() {
            counts[p.location_of(i)] += 1;
        }
        // Head locations dominate the tail under Zipf.
        let head: usize = counts[..4].iter().sum();
        let tail: usize = counts[16..].iter().sum();
        assert!(head > 2 * tail, "head {head} vs tail {tail}: {counts:?}");
    }

    #[test]
    fn coordinates_stay_in_bbox() {
        let p = ParisLike::generate(2, small());
        for i in (0..p.len()).step_by(13) {
            let g = p.image(i);
            assert!((2.31..=2.34).contains(&g.lon));
            assert!((48.855..=48.872).contains(&g.lat));
        }
    }

    #[test]
    fn same_location_images_share_coordinates() {
        let p = ParisLike::generate(3, small());
        // Find two images at the same location.
        let mut by_loc: std::collections::HashMap<usize, Vec<usize>> = Default::default();
        for i in 0..p.len() {
            by_loc.entry(p.location_of(i)).or_default().push(i);
        }
        let pair = by_loc
            .values()
            .find(|v| v.len() >= 2)
            .expect("zipf guarantees collisions");
        let a = p.image(pair[0]);
        let b = p.image(pair[1]);
        assert_eq!((a.lon, a.lat), (b.lon, b.lat));
        assert_ne!(a.image, b.image); // distinct views
    }

    #[test]
    fn occupied_locations_counts_unique() {
        let p = ParisLike::generate(5, small());
        let occ = p.occupied_locations();
        assert!(occ > 0 && occ <= 20);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_bbox_rejected() {
        let mut cfg = small();
        cfg.bbox = (2.34, 2.31, 48.855, 48.872);
        let _ = ParisLike::generate(1, cfg);
    }
}
