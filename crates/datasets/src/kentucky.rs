//! The Kentucky-like imageset: groups of 4 similar views.
//!
//! The real University of Kentucky benchmark holds 10,200 photos in 2,550
//! groups of 4 views of one object; the paper uses it for every precision
//! experiment. This generator reproduces the structure: each group is 4
//! jittered views of one synthetic scene.

use crate::scene::{Scene, SceneConfig};
use bees_image::RgbImage;

/// One group of four similar views of the same scene.
#[derive(Debug, Clone)]
pub struct KentuckyGroup {
    /// Index of the generating scene (stable across runs for a fixed seed).
    pub scene_id: u64,
    /// The four views; `images[0]` is the canonical (unjittered) view.
    pub images: Vec<RgbImage>,
}

impl KentuckyGroup {
    /// Number of images per group, as in the real benchmark.
    pub const GROUP_SIZE: usize = 4;
}

/// Generates `n_groups` groups of 4 similar views each.
///
/// Deterministic in `seed`; group `i`'s scene seed is derived from
/// `seed` and `i` so subsets are stable as `n_groups` grows.
///
/// # Examples
///
/// ```
/// use bees_datasets::{kentucky_like, SceneConfig};
///
/// let groups = kentucky_like(42, 3, SceneConfig { width: 96, height: 72, n_shapes: 10, texture_amp: 8.0 });
/// assert_eq!(groups.len(), 3);
/// assert_eq!(groups[0].images.len(), 4);
/// ```
pub fn kentucky_like(seed: u64, n_groups: usize, config: SceneConfig) -> Vec<KentuckyGroup> {
    (0..n_groups)
        .map(|i| {
            let scene_seed = seed.wrapping_mul(1_000_003).wrapping_add(i as u64);
            let scene = Scene::new(scene_seed, config);
            let images = scene.render_views(scene_seed ^ 0xDEAD_BEEF, KentuckyGroup::GROUP_SIZE);
            KentuckyGroup {
                scene_id: scene_seed,
                images,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SceneConfig {
        SceneConfig {
            width: 96,
            height: 72,
            n_shapes: 10,
            texture_amp: 8.0,
        }
    }

    #[test]
    fn groups_have_four_distinct_images() {
        let groups = kentucky_like(1, 2, small());
        for g in &groups {
            assert_eq!(g.images.len(), 4);
            for i in 0..4 {
                for j in (i + 1)..4 {
                    assert_ne!(g.images[i], g.images[j], "views {i} and {j} identical");
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = kentucky_like(9, 2, small());
        let b = kentucky_like(9, 2, small());
        assert_eq!(a[1].images, b[1].images);
        assert_eq!(a[1].scene_id, b[1].scene_id);
    }

    #[test]
    fn prefix_stability() {
        // Growing the dataset must not change earlier groups.
        let small_set = kentucky_like(5, 2, small());
        let big_set = kentucky_like(5, 4, small());
        assert_eq!(small_set[0].images, big_set[0].images);
        assert_eq!(small_set[1].images, big_set[1].images);
    }

    #[test]
    fn distinct_groups_use_distinct_scenes() {
        let groups = kentucky_like(2, 3, small());
        assert_ne!(groups[0].images[0], groups[1].images[0]);
        assert_ne!(groups[1].images[0], groups[2].images[0]);
    }
}
