//! Seeded synthetic scenes and jittered views of them.

use bees_image::{draw, Rgb, RgbImage};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Size and complexity of generated scenes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneConfig {
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Number of random shapes layered onto the background.
    pub n_shapes: usize,
    /// Amplitude of the deterministic mid-frequency texture overlaid on
    /// the scene (0 disables it). Texture raises the scene's entropy so
    /// that encoded file sizes behave like real photographs instead of
    /// flat cartoons, and it feeds the corner detectors.
    pub texture_amp: f32,
}

impl Default for SceneConfig {
    fn default() -> Self {
        SceneConfig {
            width: 384,
            height: 288,
            n_shapes: 30,
            texture_amp: 12.0,
        }
    }
}

/// One shape in a scene, in scene coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Shape {
    Rect {
        x: f32,
        y: f32,
        w: f32,
        h: f32,
        color: Rgb,
    },
    Disk {
        x: f32,
        y: f32,
        r: f32,
        color: Rgb,
    },
    Triangle {
        pts: [(f32, f32); 3],
        color: Rgb,
    },
    Checker {
        x: f32,
        y: f32,
        w: f32,
        h: f32,
        cell: u32,
        a: Rgb,
        b: Rgb,
    },
    Line {
        x0: f32,
        y0: f32,
        x1: f32,
        y1: f32,
        color: Rgb,
    },
}

/// How one *view* of a scene differs from the canonical view: the synthetic
/// analogue of a second photographer shooting the same subject.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ViewJitter {
    /// Horizontal shift in pixels.
    pub dx: f32,
    /// Vertical shift in pixels.
    pub dy: f32,
    /// Scale factor around the image center (1.0 = none).
    pub scale: f32,
    /// Global brightness shift.
    pub brightness: i32,
    /// Seed of the per-pixel sensor noise.
    pub noise_seed: u64,
    /// Peak amplitude of the sensor noise (0 disables it).
    pub noise_amp: u8,
}

impl ViewJitter {
    /// The canonical (unjittered) view.
    pub fn identity() -> Self {
        ViewJitter {
            dx: 0.0,
            dy: 0.0,
            scale: 1.0,
            brightness: 0,
            noise_seed: 0,
            noise_amp: 0,
        }
    }

    /// A small random jitter — enough to make descriptors differ, small
    /// enough that the views remain clearly similar.
    pub fn sample<R: Rng>(rng: &mut R) -> Self {
        ViewJitter {
            dx: rng.gen_range(-4.0..4.0),
            dy: rng.gen_range(-4.0..4.0),
            scale: rng.gen_range(0.96..1.04),
            brightness: rng.gen_range(-12..=12),
            noise_seed: rng.gen(),
            noise_amp: rng.gen_range(2..=6),
        }
    }
}

impl Default for ViewJitter {
    fn default() -> Self {
        ViewJitter::identity()
    }
}

/// A deterministic synthetic scene: the shapes are fixed by the seed, and
/// any number of views can be rendered from it.
///
/// # Examples
///
/// ```
/// use bees_datasets::{Scene, SceneConfig, ViewJitter};
///
/// let scene = Scene::new(7, SceneConfig::default());
/// let a = scene.render(&ViewJitter::identity());
/// let b = scene.render(&ViewJitter::identity());
/// assert_eq!(a, b); // fully deterministic
/// ```
#[derive(Debug, Clone)]
pub struct Scene {
    config: SceneConfig,
    background: (Rgb, Rgb),
    shapes: Vec<Shape>,
    /// Per-scene texture waves: `(fx, fy, phase, weight)` per component.
    texture: [(f32, f32, f32, f32); 3],
}

impl Scene {
    /// Generates the scene for `seed`.
    pub fn new(seed: u64, config: SceneConfig) -> Self {
        let mut rng =
            ChaCha8Rng::seed_from_u64(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1));
        let (w, h) = (config.width as f32, config.height as f32);
        let color = |rng: &mut ChaCha8Rng| Rgb::new(rng.gen(), rng.gen(), rng.gen());
        let background = (color(&mut rng), color(&mut rng));
        let mut shapes = Vec::with_capacity(config.n_shapes);
        for _ in 0..config.n_shapes {
            let shape = match rng.gen_range(0..5) {
                0 => Shape::Rect {
                    x: rng.gen_range(0.0..w),
                    y: rng.gen_range(0.0..h),
                    w: rng.gen_range(8.0..w / 3.0),
                    h: rng.gen_range(8.0..h / 3.0),
                    color: color(&mut rng),
                },
                1 => Shape::Disk {
                    x: rng.gen_range(0.0..w),
                    y: rng.gen_range(0.0..h),
                    r: rng.gen_range(4.0..w / 6.0),
                    color: color(&mut rng),
                },
                2 => {
                    let cx = rng.gen_range(0.0..w);
                    let cy = rng.gen_range(0.0..h);
                    let pt = |rng: &mut ChaCha8Rng| {
                        (
                            cx + rng.gen_range(-40.0..40.0),
                            cy + rng.gen_range(-40.0..40.0),
                        )
                    };
                    Shape::Triangle {
                        pts: [pt(&mut rng), pt(&mut rng), pt(&mut rng)],
                        color: color(&mut rng),
                    }
                }
                3 => Shape::Checker {
                    x: rng.gen_range(0.0..w),
                    y: rng.gen_range(0.0..h),
                    w: rng.gen_range(16.0..w / 2.5),
                    h: rng.gen_range(16.0..h / 2.5),
                    cell: rng.gen_range(3..9),
                    a: color(&mut rng),
                    b: color(&mut rng),
                },
                _ => Shape::Line {
                    x0: rng.gen_range(0.0..w),
                    y0: rng.gen_range(0.0..h),
                    x1: rng.gen_range(0.0..w),
                    y1: rng.gen_range(0.0..h),
                    color: color(&mut rng),
                },
            };
            shapes.push(shape);
        }
        // Texture waves: mid frequencies (periods of ~5-30 px) survive
        // moderate DCT quantization, which is what makes encoded sizes
        // realistic.
        let wave = |rng: &mut ChaCha8Rng| {
            (
                rng.gen_range(0.2..1.3),
                rng.gen_range(0.2..1.3),
                rng.gen_range(0.0..std::f32::consts::TAU),
                rng.gen_range(0.5..1.0),
            )
        };
        let texture = [wave(&mut rng), wave(&mut rng), wave(&mut rng)];
        Scene {
            config,
            background,
            shapes,
            texture,
        }
    }

    /// The scene's configuration.
    pub fn config(&self) -> &SceneConfig {
        &self.config
    }

    /// Renders one view of the scene.
    pub fn render(&self, view: &ViewJitter) -> RgbImage {
        let (w, h) = (self.config.width, self.config.height);
        let mut img = RgbImage::new(w, h).expect("scene dimensions are non-zero");
        draw::fill_vertical_gradient(&mut img, self.background.0, self.background.1);
        let (cx, cy) = (w as f32 / 2.0, h as f32 / 2.0);
        // Map a scene point through the view transform.
        let tx = |x: f32| -> f32 { (x - cx) * view.scale + cx + view.dx };
        let ty = |y: f32| -> f32 { (y - cy) * view.scale + cy + view.dy };
        for shape in &self.shapes {
            match *shape {
                Shape::Rect {
                    x,
                    y,
                    w: sw,
                    h: sh,
                    color,
                } => {
                    draw::fill_rect(
                        &mut img,
                        tx(x) as i64,
                        ty(y) as i64,
                        (sw * view.scale) as u32,
                        (sh * view.scale) as u32,
                        color,
                    );
                }
                Shape::Disk { x, y, r, color } => {
                    draw::fill_disk(
                        &mut img,
                        tx(x) as i64,
                        ty(y) as i64,
                        (r * view.scale) as u32,
                        color,
                    );
                }
                Shape::Triangle { pts, color } => {
                    draw::fill_triangle(
                        &mut img,
                        (tx(pts[0].0) as i64, ty(pts[0].1) as i64),
                        (tx(pts[1].0) as i64, ty(pts[1].1) as i64),
                        (tx(pts[2].0) as i64, ty(pts[2].1) as i64),
                        color,
                    );
                }
                Shape::Checker {
                    x,
                    y,
                    w: sw,
                    h: sh,
                    cell,
                    a,
                    b,
                } => {
                    draw::draw_checker(
                        &mut img,
                        tx(x) as i64,
                        ty(y) as i64,
                        (sw * view.scale) as u32,
                        (sh * view.scale) as u32,
                        cell,
                        a,
                        b,
                    );
                }
                Shape::Line {
                    x0,
                    y0,
                    x1,
                    y1,
                    color,
                } => {
                    draw::draw_line(
                        &mut img,
                        tx(x0) as i64,
                        ty(y0) as i64,
                        tx(x1) as i64,
                        ty(y1) as i64,
                        color,
                    );
                }
            }
        }
        if self.config.texture_amp > 0.0 {
            // Texture is scene content: evaluate it in scene coordinates so
            // it moves/scales with the view like everything else.
            let amp = self.config.texture_amp;
            for y in 0..h {
                for x in 0..w {
                    let sx = (x as f32 - cx - view.dx) / view.scale + cx;
                    let sy = (y as f32 - cy - view.dy) / view.scale + cy;
                    let mut t = 0.0f32;
                    for &(fx, fy, phase, weight) in &self.texture {
                        // Product waves give blob-like texture (corner
                        // responses), not just diagonal stripes.
                        t += weight * (fx * sx + phase).sin() * (fy * sy + 1.7 * phase).sin();
                    }
                    let p = img.get(x, y);
                    let adj = |v: u8| (v as f32 + amp * t).clamp(0.0, 255.0) as u8;
                    img.set(x, y, Rgb::new(adj(p.r), adj(p.g), adj(p.b)));
                }
            }
        }
        if view.brightness != 0 {
            draw::adjust_brightness(&mut img, view.brightness);
        }
        if view.noise_amp > 0 {
            apply_noise(&mut img, view.noise_seed, view.noise_amp);
        }
        img
    }

    /// Renders the canonical view plus `extra` jittered views, all from a
    /// deterministic per-scene jitter stream.
    pub fn render_views(&self, jitter_seed: u64, count: usize) -> Vec<RgbImage> {
        let mut rng = ChaCha8Rng::seed_from_u64(jitter_seed);
        (0..count)
            .map(|i| {
                if i == 0 {
                    self.render(&ViewJitter::identity())
                } else {
                    self.render(&ViewJitter::sample(&mut rng))
                }
            })
            .collect()
    }
}

/// Adds deterministic per-pixel uniform noise in `[-amp, amp]`.
fn apply_noise(img: &mut RgbImage, seed: u64, amp: u8) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let amp = amp as i32;
    for y in 0..img.height() {
        for x in 0..img.width() {
            let p = img.get(x, y);
            let n = rng.gen_range(-amp..=amp);
            let adj = |v: u8| (v as i32 + n).clamp(0, 255) as u8;
            img.set(x, y, Rgb::new(adj(p.r), adj(p.g), adj(p.b)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bees_features::orb::Orb;
    use bees_features::similarity::{jaccard_similarity, SimilarityConfig};
    use bees_features::FeatureExtractor;

    #[test]
    fn scenes_are_deterministic() {
        let cfg = SceneConfig::default();
        let a = Scene::new(5, cfg).render(&ViewJitter::identity());
        let b = Scene::new(5, cfg).render(&ViewJitter::identity());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_scenes() {
        let cfg = SceneConfig::default();
        let a = Scene::new(1, cfg).render(&ViewJitter::identity());
        let b = Scene::new(2, cfg).render(&ViewJitter::identity());
        assert_ne!(a, b);
    }

    #[test]
    fn views_of_one_scene_are_orb_similar_and_cross_scene_is_not() {
        let cfg = SceneConfig::default();
        let orb = Orb::default();
        let sim_cfg = SimilarityConfig::default();
        let mut within = Vec::new();
        let mut across = Vec::new();
        let mut prev_features = None;
        for seed in 0..4u64 {
            let scene = Scene::new(seed, cfg);
            let views = scene.render_views(seed * 100 + 1, 2);
            let f0 = orb.extract(&views[0].to_gray());
            let f1 = orb.extract(&views[1].to_gray());
            assert!(f0.len() > 30, "scene {seed} too feature-poor: {}", f0.len());
            within.push(jaccard_similarity(&f0, &f1, &sim_cfg));
            if let Some(prev) = prev_features.take() {
                across.push(jaccard_similarity(&f0, &prev, &sim_cfg));
            }
            prev_features = Some(f0);
        }
        let min_within = within.iter().cloned().fold(f64::MAX, f64::min);
        let max_across = across.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            min_within > 2.0 * max_across + 0.01,
            "similar views {within:?} must score far above dissimilar pairs {across:?}"
        );
    }

    #[test]
    fn noise_changes_pixels_but_preserves_structure() {
        let scene = Scene::new(9, SceneConfig::default());
        let clean = scene.render(&ViewJitter::identity());
        let noisy = scene.render(&ViewJitter {
            noise_seed: 3,
            noise_amp: 5,
            ..ViewJitter::identity()
        });
        assert_ne!(clean, noisy);
        let s = bees_image::metrics::ssim(&clean.to_gray(), &noisy.to_gray()).unwrap();
        assert!(s > 0.6, "noise should not destroy the scene, ssim {s}");
    }

    #[test]
    fn render_views_first_is_canonical() {
        let scene = Scene::new(11, SceneConfig::default());
        let views = scene.render_views(1, 3);
        assert_eq!(views.len(), 3);
        assert_eq!(views[0], scene.render(&ViewJitter::identity()));
        assert_ne!(views[0], views[1]);
        assert_ne!(views[1], views[2]);
    }

    #[test]
    fn small_scene_config_renders() {
        let cfg = SceneConfig {
            width: 64,
            height: 48,
            n_shapes: 6,
            texture_amp: 8.0,
        };
        let img = Scene::new(3, cfg).render(&ViewJitter::identity());
        assert_eq!(img.dimensions(), (64, 48));
    }
}
