//! Reusable per-query scratch storage.
//!
//! A query against an accelerated backend churns through several transient
//! buffers: the k-way merge heap and cursors in
//! [`MihIndex::candidates_into`], the deduplicated candidate-id list, and —
//! for a [`ShardedIndex`] — one set of each per shard. Allocating those
//! fresh on every query puts the allocator on the hot path at fleet scale,
//! so callers that issue many queries (the server, the benches) hold one
//! [`QueryScratch`] per query stream and thread it through
//! [`FeatureIndex::query_with_scratch`].
//!
//! Lifetime rules (also documented in `DESIGN.md` §10):
//!
//! * a `QueryScratch` belongs to exactly one query stream at a time — it is
//!   `&mut` for the duration of each query and never shared across threads;
//! * the buffers inside only ever grow (high-water-mark recycling), so a
//!   warmed scratch makes a steady-state query allocation-free except for
//!   the returned hit list and one bounded posting-list table whose length
//!   is independent of the index size (pinned by the allocation-count test
//!   in `crates/index/tests/alloc_counts.rs`);
//! * scratch contents are *outputs plus garbage*: nothing read from a
//!   scratch influences scoring, so reusing one can never change results —
//!   the determinism suite pins query results byte-identical with and
//!   without scratch reuse.
//!
//! [`MihIndex::candidates_into`]: crate::MihIndex::candidates_into
//! [`ShardedIndex`]: crate::ShardedIndex
//! [`FeatureIndex::query_with_scratch`]: crate::FeatureIndex::query_with_scratch

use crate::store::ImageId;
use std::cmp::Reverse;

/// Recycled buffers for one query stream (see the module docs).
///
/// # Examples
///
/// ```
/// use bees_index::{FeatureIndex, ImageId, MihIndex, Query, QueryScratch};
/// use bees_features::similarity::SimilarityConfig;
/// use bees_features::ImageFeatures;
///
/// let mut index = MihIndex::new(SimilarityConfig::default());
/// index.insert(ImageId(1), ImageFeatures::empty_binary());
/// let probe = ImageFeatures::empty_binary();
/// let mut scratch = QueryScratch::new();
/// // Same results as `index.query(..)`, without per-query allocations.
/// let hits = index.query_with_scratch(&Query::new(&probe), &mut scratch);
/// assert!(hits.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct QueryScratch {
    /// Deduplicated, ascending candidate ids from the latest MIH merge.
    pub(crate) cand_ids: Vec<ImageId>,
    /// Backing storage for the k-way merge heap of `(next id, list index)`.
    pub(crate) merge_heap: Vec<Reverse<(ImageId, usize)>>,
    /// Per-posting-list read cursors for the k-way merge.
    pub(crate) cursors: Vec<usize>,
    /// Child scratches, one per shard, for `ShardedIndex` fan-out.
    pub(crate) shards: Vec<QueryScratch>,
    /// High-water mark of probed posting lists, used to size the one
    /// borrow-lifetime-bound table that cannot itself be recycled.
    pub(crate) lists_hint: usize,
}

impl QueryScratch {
    /// Creates an empty scratch; buffers grow to their steady-state sizes
    /// over the first few queries.
    pub fn new() -> Self {
        QueryScratch::default()
    }

    /// The candidate ids produced by the most recent accelerated query or
    /// [`MihIndex::candidates_into`](crate::MihIndex::candidates_into) call
    /// through this scratch (ascending, deduplicated). Exposed for the
    /// ablation benchmark.
    pub fn candidates(&self) -> &[ImageId] {
        &self.cand_ids
    }

    /// Grows the per-shard child list to at least `n` entries.
    pub(crate) fn ensure_shards(&mut self, n: usize) {
        if self.shards.len() < n {
            self.shards.resize_with(n, QueryScratch::default);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_shards_grows_but_never_shrinks() {
        let mut s = QueryScratch::new();
        s.ensure_shards(4);
        assert_eq!(s.shards.len(), 4);
        s.ensure_shards(2);
        assert_eq!(s.shards.len(), 4);
        s.ensure_shards(6);
        assert_eq!(s.shards.len(), 6);
    }

    #[test]
    fn fresh_scratch_reports_no_candidates() {
        assert!(QueryScratch::new().candidates().is_empty());
    }
}
