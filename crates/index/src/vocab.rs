//! A vocabulary-tree index (Nistér & Stewénius, CVPR 2006 — the paper's
//! reference [20], whose Kentucky benchmark BEES evaluates precision on).
//!
//! Descriptors are quantized into *visual words* by descending a
//! hierarchical k-medoids tree built over binary descriptors with Hamming
//! distance (medoid update = per-bit majority vote). Images become bags of
//! words in an inverted file; a query walks the inverted file to collect
//! candidate images by shared-word count and then — like the MIH backend —
//! rescores the candidates with the exact Jaccard similarity, so the
//! backend can narrow but never fabricate matches.
//!
//! Vector (SIFT/PCA-SIFT) feature sets fall back to a linear scan.

use crate::store::{rank_hits, ImageEntry, ImageId, QueryHit};
use crate::{FeatureIndex, Query};
use bees_features::descriptor::BinaryDescriptor;
use bees_features::similarity::{jaccard_similarity, SimilarityConfig};
use bees_features::{Descriptors, ImageFeatures};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Shape of the vocabulary tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VocabConfig {
    /// Children per node (the paper's `k`).
    pub branching: usize,
    /// Tree depth (levels below the root); leaves = `branching^depth`.
    pub depth: usize,
    /// k-medoids iterations per node.
    pub iterations: usize,
    /// Training seed.
    pub seed: u64,
}

impl Default for VocabConfig {
    fn default() -> Self {
        VocabConfig {
            branching: 8,
            depth: 3,
            iterations: 6,
            seed: 0x0007_0CAB,
        }
    }
}

/// One tree node: a centroid plus children (empty for leaves).
#[derive(Debug, Clone)]
struct Node {
    centroid: BinaryDescriptor,
    children: Vec<Node>,
    /// Leaf id when this is a leaf, usize::MAX otherwise.
    word: usize,
}

/// A trained hierarchical vocabulary over binary descriptors.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    roots: Vec<Node>,
    n_words: usize,
}

impl Vocabulary {
    /// Trains the tree from a descriptor sample.
    ///
    /// # Panics
    ///
    /// Panics if `sample` is empty or the config has zero branching/depth.
    pub fn train(sample: &[BinaryDescriptor], config: VocabConfig) -> Self {
        assert!(
            !sample.is_empty(),
            "cannot train a vocabulary on an empty sample"
        );
        assert!(config.branching >= 2, "branching must be at least 2");
        assert!(config.depth >= 1, "depth must be at least 1");
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let refs: Vec<&BinaryDescriptor> = sample.iter().collect();
        let mut next_word = 0usize;
        let roots = split(&refs, config.depth, &config, &mut rng, &mut next_word);
        Vocabulary {
            roots,
            n_words: next_word,
        }
    }

    /// Number of leaf words.
    pub fn len(&self) -> usize {
        self.n_words
    }

    /// Whether the vocabulary has no words (never true after training).
    pub fn is_empty(&self) -> bool {
        self.n_words == 0
    }

    /// Quantizes a descriptor to its visual word by greedy descent.
    pub fn word_of(&self, d: &BinaryDescriptor) -> usize {
        let mut level = &self.roots;
        loop {
            let best = level
                .iter()
                .min_by_key(|n| d.hamming_distance(&n.centroid))
                .expect("nodes are non-empty by construction");
            if best.children.is_empty() {
                return best.word;
            }
            level = &best.children;
        }
    }

    /// Quantizes a whole feature set into a sorted, deduplicated word list.
    pub fn words_of(&self, features: &ImageFeatures) -> Vec<usize> {
        let Descriptors::Binary(descs) = &features.descriptors else {
            return Vec::new();
        };
        let mut words: Vec<usize> = descs.iter().map(|d| self.word_of(d)).collect();
        words.sort_unstable();
        words.dedup();
        words
    }
}

/// Recursively k-medoids-partitions `points` into a subtree of `depth`
/// levels, assigning leaf word ids from `next_word`.
fn split(
    points: &[&BinaryDescriptor],
    depth: usize,
    config: &VocabConfig,
    rng: &mut ChaCha8Rng,
    next_word: &mut usize,
) -> Vec<Node> {
    let k = config.branching.min(points.len()).max(1);
    // Initialize centroids from distinct sample points.
    let mut chosen: Vec<&BinaryDescriptor> = points.to_vec();
    chosen.shuffle(rng);
    chosen.truncate(k);
    let mut centroids: Vec<BinaryDescriptor> = chosen.into_iter().copied().collect();

    let mut assignment = vec![0usize; points.len()];
    for _ in 0..config.iterations {
        // Assign.
        for (i, p) in points.iter().enumerate() {
            assignment[i] = centroids
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| p.hamming_distance(c))
                .map(|(j, _)| j)
                .expect("k >= 1");
        }
        // Update: per-bit majority vote within each cluster.
        for (j, centroid) in centroids.iter_mut().enumerate() {
            let members: Vec<&&BinaryDescriptor> = points
                .iter()
                .zip(&assignment)
                .filter(|(_, &a)| a == j)
                .map(|(p, _)| p)
                .collect();
            if members.is_empty() {
                continue;
            }
            let mut counts = [0usize; 256];
            for m in &members {
                for (bit, count) in counts.iter_mut().enumerate() {
                    if m.bit(bit) {
                        *count += 1;
                    }
                }
            }
            let mut bytes = [0u8; 32];
            for (bit, &count) in counts.iter().enumerate() {
                if count * 2 > members.len() {
                    bytes[bit / 8] |= 1 << (bit % 8);
                }
            }
            *centroid = BinaryDescriptor::from_bytes(bytes);
        }
    }

    // Build child nodes.
    centroids
        .into_iter()
        .enumerate()
        .map(|(j, centroid)| {
            let members: Vec<&BinaryDescriptor> = points
                .iter()
                .zip(&assignment)
                .filter(|(_, &a)| a == j)
                .map(|(p, _)| *p)
                .collect();
            if depth == 1 || members.len() <= 1 {
                let word = *next_word;
                *next_word += 1;
                Node {
                    centroid,
                    children: Vec::new(),
                    word,
                }
            } else {
                let children = split(&members, depth - 1, config, rng, next_word);
                Node {
                    centroid,
                    children,
                    word: usize::MAX,
                }
            }
        })
        .collect()
}

/// The vocabulary-tree index backend.
///
/// # Examples
///
/// ```
/// use bees_features::descriptor::BinaryDescriptor;
/// use bees_features::similarity::SimilarityConfig;
/// use bees_index::vocab::{VocabConfig, VocabIndex, Vocabulary};
///
/// let sample: Vec<BinaryDescriptor> = (0..64u8)
///     .map(|i| BinaryDescriptor::from_bytes([i; 32]))
///     .collect();
/// let vocab = Vocabulary::train(&sample, VocabConfig::default());
/// let index = VocabIndex::new(SimilarityConfig::default(), vocab);
/// assert!(index.vocabulary().len() > 1);
/// ```
#[derive(Debug, Clone)]
pub struct VocabIndex {
    entries: Vec<ImageEntry>,
    id_to_pos: HashMap<ImageId, usize>,
    /// word -> image ids containing it.
    inverted: HashMap<usize, Vec<ImageId>>,
    /// Cached word lists per position (parallel to `entries`).
    words: Vec<Vec<usize>>,
    vocabulary: Vocabulary,
    config: SimilarityConfig,
}

impl VocabIndex {
    /// Creates an empty index over a trained vocabulary.
    pub fn new(config: SimilarityConfig, vocabulary: Vocabulary) -> Self {
        VocabIndex {
            entries: Vec::new(),
            id_to_pos: HashMap::new(),
            inverted: HashMap::new(),
            words: Vec::new(),
            vocabulary,
            config,
        }
    }

    /// The trained vocabulary in use.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocabulary
    }

    /// Candidate images sharing at least one visual word with the query,
    /// with their shared-word counts. Exposed for benchmarks.
    pub fn candidates(&self, query: &ImageFeatures) -> HashMap<ImageId, usize> {
        let mut shared: HashMap<ImageId, usize> = HashMap::new();
        for w in self.vocabulary.words_of(query) {
            if let Some(ids) = self.inverted.get(&w) {
                for &id in ids {
                    *shared.entry(id).or_insert(0) += 1;
                }
            }
        }
        shared
    }
}

impl FeatureIndex for VocabIndex {
    fn insert(&mut self, id: ImageId, features: ImageFeatures) {
        let new_words = self.vocabulary.words_of(&features);
        if let Some(&pos) = self.id_to_pos.get(&id) {
            // Unindex the old words first.
            for w in &self.words[pos] {
                if let Some(bucket) = self.inverted.get_mut(w) {
                    bucket.retain(|&x| x != id);
                }
            }
            for &w in &new_words {
                self.inverted.entry(w).or_default().push(id);
            }
            self.words[pos] = new_words;
            self.entries[pos].features = features;
        } else {
            for &w in &new_words {
                self.inverted.entry(w).or_default().push(id);
            }
            self.id_to_pos.insert(id, self.entries.len());
            self.words.push(new_words);
            self.entries.push(ImageEntry { id, features });
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn query(&self, query: &Query<'_>) -> Vec<QueryHit> {
        let hits: Vec<QueryHit> = if matches!(query.features.descriptors, Descriptors::Binary(_)) {
            // Sort candidate ids so a non-zero budget keeps a deterministic
            // prefix rather than whatever `HashMap` order yields.
            let mut cands: Vec<ImageId> = self.candidates(query.features).into_keys().collect();
            cands.sort_unstable();
            if query.max_candidates > 0 {
                cands.truncate(query.max_candidates);
            }
            cands
                .into_iter()
                .filter_map(|id| {
                    if !query.is_allowed(id) {
                        return None;
                    }
                    let pos = *self.id_to_pos.get(&id).expect("candidates are indexed");
                    let s = jaccard_similarity(
                        query.features,
                        &self.entries[pos].features,
                        &self.config,
                    );
                    (s > 0.0).then_some(QueryHit { id, similarity: s })
                })
                .collect()
        } else {
            self.entries
                .iter()
                .filter_map(|e| {
                    if !query.is_allowed(e.id) {
                        return None;
                    }
                    let s = jaccard_similarity(query.features, &e.features, &self.config);
                    (s > 0.0).then_some(QueryHit {
                        id: e.id,
                        similarity: s,
                    })
                })
                .collect()
        };
        rank_hits(hits, query.k)
    }

    fn feature_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.features.wire_size()).sum()
    }

    fn similarity_config(&self) -> &SimilarityConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bees_features::Keypoint;
    use rand::Rng;

    fn random_descriptors(rng: &mut ChaCha8Rng, n: usize) -> Vec<BinaryDescriptor> {
        (0..n)
            .map(|_| {
                let mut bytes = [0u8; 32];
                rng.fill(&mut bytes);
                BinaryDescriptor::from_bytes(bytes)
            })
            .collect()
    }

    fn features(descs: Vec<BinaryDescriptor>) -> ImageFeatures {
        ImageFeatures {
            keypoints: descs.iter().map(|_| Keypoint::default()).collect(),
            descriptors: Descriptors::Binary(descs),
        }
    }

    fn trained_vocab(seed: u64) -> Vocabulary {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sample = random_descriptors(&mut rng, 400);
        Vocabulary::train(&sample, VocabConfig::default())
    }

    #[test]
    fn training_produces_multiple_words() {
        let v = trained_vocab(1);
        assert!(v.len() > 8, "only {} words", v.len());
        assert!(v.len() <= 8usize.pow(3));
    }

    #[test]
    fn quantization_is_deterministic_and_stable_under_small_noise() {
        let v = trained_vocab(2);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let d = random_descriptors(&mut rng, 1)[0];
        assert_eq!(v.word_of(&d), v.word_of(&d));
        // A 1-bit flip usually lands in the same word (not guaranteed, so
        // check a majority over several descriptors).
        let mut same = 0;
        let trials = 20;
        for d in random_descriptors(&mut rng, trials) {
            let w = v.word_of(&d);
            let mut bytes = *d.as_bytes();
            bytes[0] ^= 1;
            if v.word_of(&BinaryDescriptor::from_bytes(bytes)) == w {
                same += 1;
            }
        }
        assert!(
            same * 2 > trials,
            "only {same}/{trials} stable under 1-bit noise"
        );
    }

    #[test]
    fn exact_duplicates_are_always_found() {
        let v = trained_vocab(4);
        let mut idx = VocabIndex::new(SimilarityConfig::default(), v);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let fs: Vec<ImageFeatures> = (0..6)
            .map(|_| features(random_descriptors(&mut rng, 20)))
            .collect();
        for (i, f) in fs.iter().enumerate() {
            idx.insert(ImageId(i as u64), f.clone());
        }
        for (i, f) in fs.iter().enumerate() {
            let hit = idx.max_similarity(f).expect("duplicate shares all words");
            assert_eq!(hit.id, ImageId(i as u64));
            assert!((hit.similarity - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn reinsert_replaces_and_unindexes_words() {
        let v = trained_vocab(6);
        let mut idx = VocabIndex::new(SimilarityConfig::default(), v);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let f1 = features(random_descriptors(&mut rng, 15));
        let f2 = features(random_descriptors(&mut rng, 15));
        idx.insert(ImageId(1), f1.clone());
        idx.insert(ImageId(1), f2.clone());
        assert_eq!(idx.len(), 1);
        assert!(
            idx.max_similarity(&f1).is_none(),
            "old words must be unindexed"
        );
        assert!((idx.max_similarity(&f2).unwrap().similarity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unrelated_queries_have_scattered_candidates() {
        let v = trained_vocab(8);
        let mut idx = VocabIndex::new(SimilarityConfig::default(), v);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for i in 0..20 {
            idx.insert(ImageId(i), features(random_descriptors(&mut rng, 15)));
        }
        // Random queries share words by chance (the vocabulary is coarse),
        // but the exact rescoring keeps false hits near zero similarity.
        let probe = features(random_descriptors(&mut rng, 15));
        if let Some(hit) = idx.max_similarity(&probe) {
            assert!(
                hit.similarity < 0.2,
                "random probe scored {}",
                hit.similarity
            );
        }
    }

    #[test]
    fn words_of_empty_features_is_empty() {
        let v = trained_vocab(10);
        assert!(v.words_of(&ImageFeatures::empty_binary()).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn training_on_empty_sample_panics() {
        let _ = Vocabulary::train(&[], VocabConfig::default());
    }

    #[test]
    fn tiny_sample_trains_a_degenerate_tree() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let sample = random_descriptors(&mut rng, 3);
        let v = Vocabulary::train(&sample, VocabConfig::default());
        assert!(v.len() >= 1);
        // Quantization still works.
        let _ = v.word_of(&sample[0]);
    }
}
