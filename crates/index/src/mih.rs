//! Multi-index hashing (MIH) accelerated index for binary descriptors.
//!
//! Norouzi et al.'s multi-index hashing observation: split a 256-bit code
//! into 4 disjoint 64-bit words; two codes within Hamming distance `r` must
//! agree *exactly* on at least one word whenever `r < 4` (pigeonhole), and
//! within distance `4·(p+1) − 1` some word is within distance `p` — which
//! the default radius-1 multi-probe exploits by also looking up every
//! single-bit neighbor of each query word.
//!
//! Candidate images are then scored with the full exact Jaccard similarity,
//! so MIH can never *fabricate* a match; it can only miss images whose best
//! descriptor pairs are noisier than the probe radius covers. For
//! near-duplicate re-uploads (the dominant disaster pattern) recall is
//! effectively total; for loosely similar views a linear scan remains the
//! exact reference, which is why the backend is selectable per server.
//!
//! The backend falls back to a linear scan for vector (SIFT/PCA-SIFT)
//! feature sets, which have no binary words to hash.

use crate::scratch::QueryScratch;
use crate::store::{rank_hits, ImageEntry, ImageId, QueryHit};
use crate::{FeatureIndex, Query};
use bees_features::similarity::{jaccard_similarity, jaccard_similarity_blocks, SimilarityConfig};
use bees_features::{DescriptorBlock, Descriptors, ImageFeatures};
use bees_runtime::Runtime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Accelerated index: word-collision candidate generation plus exact
/// rescoring.
///
/// # Examples
///
/// ```
/// use bees_index::{FeatureIndex, ImageId, MihIndex};
/// use bees_features::similarity::SimilarityConfig;
/// use bees_features::ImageFeatures;
///
/// let mut index = MihIndex::new(SimilarityConfig::default());
/// index.insert(ImageId(1), ImageFeatures::empty_binary());
/// assert_eq!(index.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct MihIndex {
    entries: Vec<ImageEntry>,
    /// SoA word blocks parallel to `entries` (`None` for vector feature
    /// sets), built once at insert so rescoring streams contiguous words
    /// instead of re-deriving them per candidate pair.
    blocks: Vec<Option<DescriptorBlock>>,
    id_to_pos: HashMap<ImageId, usize>,
    /// One hash table per 64-bit word position: word value -> image ids.
    tables: [HashMap<u64, Vec<ImageId>>; 4],
    /// Multi-probe radius: also probe every word within this Hamming
    /// distance of each query word (0 = exact words only; 1 probes the 64
    /// single-bit neighbors too, sharply raising recall on noisy
    /// descriptors at ~65x the lookups).
    probe_radius: u8,
    config: SimilarityConfig,
}

impl Default for MihIndex {
    fn default() -> Self {
        MihIndex::new(SimilarityConfig::default())
    }
}

impl MihIndex {
    /// Creates an empty index with the given similarity configuration and
    /// the default probe radius of 1.
    pub fn new(config: SimilarityConfig) -> Self {
        MihIndex {
            entries: Vec::new(),
            blocks: Vec::new(),
            id_to_pos: HashMap::new(),
            tables: Default::default(),
            probe_radius: 1,
            config,
        }
    }

    /// Overrides the multi-probe radius (0 or 1; larger radii cost
    /// combinatorially more lookups).
    ///
    /// # Panics
    ///
    /// Panics if `radius > 1`.
    pub fn with_probe_radius(mut self, radius: u8) -> Self {
        assert!(radius <= 1, "probe radius above 1 is unsupported");
        self.probe_radius = radius;
        self
    }

    /// Returns the candidate image ids for a query (images sharing a
    /// descriptor word within the probe radius), sorted ascending. Exposed
    /// for the ablation benchmark.
    pub fn candidates(&self, query: &ImageFeatures) -> Vec<ImageId> {
        self.candidates_budgeted(query, 0)
    }

    /// [`candidates`](Self::candidates) with a budget: stops after `budget`
    /// distinct ids when `budget > 0`. Because every posting list is kept
    /// sorted and the lists are k-way merged smallest-id-first, a budgeted
    /// scan returns exactly the `budget` smallest candidate ids — a
    /// deterministic prefix, not an arbitrary subset.
    ///
    /// The merge replaces the old collect-into-`HashSet`-then-sort path,
    /// whose full re-sort on every query dominated lookup cost once posting
    /// lists grew; it also made early termination impossible (the budget
    /// would have applied before dedup/sort, yielding an order-dependent
    /// subset).
    pub fn candidates_budgeted(&self, query: &ImageFeatures, budget: usize) -> Vec<ImageId> {
        let mut scratch = QueryScratch::new();
        self.candidates_into(query, budget, &mut scratch);
        std::mem::take(&mut scratch.cand_ids)
    }

    /// [`candidates_budgeted`](Self::candidates_budgeted) into caller-owned
    /// scratch: the result lands in `scratch.candidates()` and the merge
    /// heap, cursor table, and output list all recycle the scratch's
    /// buffers. The one transient that cannot live in the scratch is the
    /// table of borrowed posting-list slices (its lifetime is tied to
    /// `&self`); it is allocated per call at the scratch's high-water-mark
    /// capacity, so a warmed scratch performs exactly one bounded
    /// allocation here regardless of index size — pinned by
    /// `tests/alloc_counts.rs`.
    pub fn candidates_into(
        &self,
        query: &ImageFeatures,
        budget: usize,
        scratch: &mut QueryScratch,
    ) {
        scratch.cand_ids.clear();
        let Descriptors::Binary(descs) = &query.descriptors else {
            return;
        };
        // Gather every probed posting list (each sorted ascending).
        let mut lists: Vec<&[ImageId]> = Vec::with_capacity(scratch.lists_hint);
        for d in descs {
            for chunk in 0..4 {
                let word = d.word(chunk);
                if let Some(ids) = self.tables[chunk].get(&word) {
                    lists.push(ids);
                }
                if self.probe_radius >= 1 {
                    for bit in 0..64 {
                        if let Some(ids) = self.tables[chunk].get(&(word ^ (1u64 << bit))) {
                            lists.push(ids);
                        }
                    }
                }
            }
        }
        scratch.lists_hint = scratch.lists_hint.max(lists.len());
        // K-way merge with on-the-fly dedup: heap of (next id, list index),
        // rebuilt inside the scratch's recycled heap storage.
        let mut heap_store = std::mem::take(&mut scratch.merge_heap);
        heap_store.clear();
        let mut heap: BinaryHeap<Reverse<(ImageId, usize)>> = BinaryHeap::from(heap_store);
        for (li, l) in lists.iter().enumerate() {
            if !l.is_empty() {
                heap.push(Reverse((l[0], li)));
            }
        }
        scratch.cursors.clear();
        scratch.cursors.resize(lists.len(), 1);
        let out = &mut scratch.cand_ids;
        while let Some(Reverse((id, li))) = heap.pop() {
            if out.last() != Some(&id) {
                if budget > 0 && out.len() == budget {
                    break;
                }
                out.push(id);
            }
            let cur = scratch.cursors[li];
            if let Some(&next) = lists[li].get(cur) {
                scratch.cursors[li] = cur + 1;
                heap.push(Reverse((next, li)));
            }
        }
        scratch.merge_heap = heap.into_vec();
    }

    fn index_words(&mut self, id: ImageId, features: &ImageFeatures) {
        if let Descriptors::Binary(descs) = &features.descriptors {
            for d in descs {
                for chunk in 0..4 {
                    let bucket = self.tables[chunk].entry(d.word(chunk)).or_default();
                    // Sorted insertion keeps every posting list ascending,
                    // which the budgeted k-way merge in `candidates` relies
                    // on (ids usually arrive in order, making this a cheap
                    // append in practice).
                    if let Err(pos) = bucket.binary_search(&id) {
                        bucket.insert(pos, id);
                    }
                }
            }
        }
    }

    fn unindex_words(&mut self, id: ImageId, features: &ImageFeatures) {
        if let Descriptors::Binary(descs) = &features.descriptors {
            for d in descs {
                for chunk in 0..4 {
                    if let Some(bucket) = self.tables[chunk].get_mut(&d.word(chunk)) {
                        bucket.retain(|&x| x != id);
                    }
                }
            }
        }
    }
}

impl FeatureIndex for MihIndex {
    fn insert(&mut self, id: ImageId, features: ImageFeatures) {
        let block = features.descriptors.to_block();
        if let Some(&pos) = self.id_to_pos.get(&id) {
            let old = self.entries[pos].features.clone();
            self.unindex_words(id, &old);
            self.index_words(id, &features);
            self.entries[pos].features = features;
            self.blocks[pos] = block;
        } else {
            self.index_words(id, &features);
            self.id_to_pos.insert(id, self.entries.len());
            self.entries.push(ImageEntry { id, features });
            self.blocks.push(block);
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn query(&self, query: &Query<'_>) -> Vec<QueryHit> {
        self.query_with_scratch(query, &mut QueryScratch::new())
    }

    fn query_with_scratch(&self, query: &Query<'_>, scratch: &mut QueryScratch) -> Vec<QueryHit> {
        // Exact Jaccard rescoring dominates query cost; score every
        // candidate (or entry) in parallel, keeping candidate order.
        let rt = Runtime::current();
        let hits: Vec<QueryHit> = if let Some(qblock) = query.features.descriptors.to_block() {
            self.candidates_into(query.features, query.max_candidates, scratch);
            rt.par_map(&scratch.cand_ids, |&id| {
                if !query.is_allowed(id) {
                    return None;
                }
                let pos = *self.id_to_pos.get(&id).expect("candidate ids are indexed");
                // Candidates only arise from word tables, which index
                // binary sets exclusively — so a cached block exists.
                let s = match &self.blocks[pos] {
                    Some(tblock) => jaccard_similarity_blocks(&qblock, tblock, &self.config),
                    None => jaccard_similarity(
                        query.features,
                        &self.entries[pos].features,
                        &self.config,
                    ),
                };
                (s > 0.0).then_some(QueryHit { id, similarity: s })
            })
            .into_iter()
            .flatten()
            .collect()
        } else {
            // Vector features: no word structure, fall back to a full scan
            // (exact, so the candidate budget does not apply).
            rt.par_map(&self.entries, |e| {
                if !query.is_allowed(e.id) {
                    return None;
                }
                let s = jaccard_similarity(query.features, &e.features, &self.config);
                (s > 0.0).then_some(QueryHit {
                    id: e.id,
                    similarity: s,
                })
            })
            .into_iter()
            .flatten()
            .collect()
        };
        rank_hits(hits, query.k)
    }

    fn feature_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.features.wire_size()).sum()
    }

    fn similarity_config(&self) -> &SimilarityConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bees_features::descriptor::BinaryDescriptor;
    use bees_features::Keypoint;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_features(rng: &mut ChaCha8Rng, n: usize) -> ImageFeatures {
        let descs: Vec<BinaryDescriptor> = (0..n)
            .map(|_| {
                let mut bytes = [0u8; 32];
                rng.fill(&mut bytes);
                BinaryDescriptor::from_bytes(bytes)
            })
            .collect();
        ImageFeatures {
            keypoints: descs.iter().map(|_| Keypoint::default()).collect(),
            descriptors: Descriptors::Binary(descs),
        }
    }

    /// Flips `k` bits of each descriptor, simulating a noisy re-observation.
    fn perturb(f: &ImageFeatures, rng: &mut ChaCha8Rng, k: usize) -> ImageFeatures {
        if let Descriptors::Binary(descs) = &f.descriptors {
            let out: Vec<BinaryDescriptor> = descs
                .iter()
                .map(|d| {
                    let mut bytes = *d.as_bytes();
                    for _ in 0..k {
                        let bit = rng.gen_range(0..256usize);
                        bytes[bit / 8] ^= 1 << (bit % 8);
                    }
                    BinaryDescriptor::from_bytes(bytes)
                })
                .collect();
            ImageFeatures {
                keypoints: f.keypoints.clone(),
                descriptors: Descriptors::Binary(out),
            }
        } else {
            f.clone()
        }
    }

    #[test]
    fn exact_duplicate_is_found() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut idx = MihIndex::new(SimilarityConfig::default());
        let f = random_features(&mut rng, 20);
        idx.insert(ImageId(1), f.clone());
        for _ in 0..10 {
            idx.insert(
                ImageId(rng.gen_range(2..100)),
                random_features(&mut rng, 20),
            );
        }
        let hit = idx.max_similarity(&f).unwrap();
        assert_eq!(hit.id, ImageId(1));
        assert!((hit.similarity - 1.0).abs() < 1e-9);
    }

    #[test]
    fn agrees_with_linear_index_on_noisy_duplicates() {
        use crate::LinearIndex;
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let cfg = SimilarityConfig::default();
        let mut mih = MihIndex::new(cfg);
        let mut lin = LinearIndex::new(cfg);
        let originals: Vec<ImageFeatures> = (0..8).map(|_| random_features(&mut rng, 15)).collect();
        for (i, f) in originals.iter().enumerate() {
            mih.insert(ImageId(i as u64), f.clone());
            lin.insert(ImageId(i as u64), f.clone());
        }
        for (i, f) in originals.iter().enumerate() {
            // Noisy re-observation: 2 flipped bits per descriptor keeps at
            // least one exact 64-bit word with overwhelming probability.
            let noisy = perturb(f, &mut rng, 2);
            let mh = mih.max_similarity(&noisy).expect("mih hit");
            let lh = lin.max_similarity(&noisy).expect("linear hit");
            assert_eq!(mh.id, lh.id, "query {i}");
            assert!((mh.similarity - lh.similarity).abs() < 1e-9);
        }
    }

    #[test]
    fn unrelated_queries_have_few_candidates() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut idx = MihIndex::new(SimilarityConfig::default());
        for i in 0..50 {
            idx.insert(ImageId(i), random_features(&mut rng, 10));
        }
        let probe = random_features(&mut rng, 10);
        // Random 64-bit words essentially never collide.
        assert!(idx.candidates(&probe).len() < 5);
    }

    #[test]
    fn reinsert_replaces_and_unindexes() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut idx = MihIndex::new(SimilarityConfig::default());
        let f1 = random_features(&mut rng, 10);
        let f2 = random_features(&mut rng, 10);
        idx.insert(ImageId(1), f1.clone());
        idx.insert(ImageId(1), f2.clone());
        assert_eq!(idx.len(), 1);
        // The old features must no longer match.
        assert!(idx.max_similarity(&f1).is_none());
        assert!((idx.max_similarity(&f2).unwrap().similarity - 1.0).abs() < 1e-9);
    }

    #[test]
    fn posting_lists_stay_sorted_under_out_of_order_inserts() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut idx = MihIndex::new(SimilarityConfig::default());
        let shared = random_features(&mut rng, 5);
        // Insert the same feature set under descending ids: the candidate
        // merge must still return ascending ids.
        for id in [90u64, 40, 75, 3, 62] {
            idx.insert(ImageId(id), shared.clone());
        }
        let cands = idx.candidates(&shared);
        assert_eq!(
            cands,
            vec![
                ImageId(3),
                ImageId(40),
                ImageId(62),
                ImageId(75),
                ImageId(90)
            ]
        );
    }

    #[test]
    fn candidate_budget_keeps_the_smallest_ids() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let mut idx = MihIndex::new(SimilarityConfig::default());
        let shared = random_features(&mut rng, 5);
        for id in 0..10u64 {
            idx.insert(ImageId(id), shared.clone());
        }
        let all = idx.candidates(&shared);
        assert_eq!(all.len(), 10);
        let capped = idx.candidates_budgeted(&shared, 4);
        assert_eq!(capped, all[..4].to_vec());
        // Budget 0 means unlimited.
        assert_eq!(idx.candidates_budgeted(&shared, 0), all);
    }

    #[test]
    fn query_respects_k_and_budget() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let mut idx = MihIndex::new(SimilarityConfig::default());
        let shared = random_features(&mut rng, 5);
        for id in 0..6u64 {
            idx.insert(ImageId(id), shared.clone());
        }
        let hits = idx.query(&Query::top_k(&shared, 3));
        assert_eq!(hits.len(), 3);
        // Perfect-score ties break toward the smallest id.
        assert_eq!(hits[0].id, ImageId(0));
        let budgeted = idx.query(&Query::top_k(&shared, 10).with_max_candidates(2));
        assert_eq!(budgeted.len(), 2);
    }

    #[test]
    fn vector_features_fall_back_to_scan() {
        use bees_features::descriptor::VectorDescriptor;
        let mut idx = MihIndex::new(SimilarityConfig::default());
        let vf = ImageFeatures {
            keypoints: vec![Keypoint::default()],
            descriptors: Descriptors::Vector(vec![VectorDescriptor::from_values(vec![
                1.0, 0.0, 0.0,
            ])]),
        };
        idx.insert(ImageId(5), vf.clone());
        let hit = idx.max_similarity(&vf).unwrap();
        assert_eq!(hit.id, ImageId(5));
    }
}
