//! Shared storage types for the index backends.

use bees_features::ImageFeatures;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Opaque identifier of an indexed image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ImageId(pub u64);

impl fmt::Display for ImageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "img#{}", self.0)
    }
}

/// An indexed image: identifier plus stored features.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageEntry {
    /// The image's identifier.
    pub id: ImageId,
    /// Its feature set as uploaded.
    pub features: ImageFeatures,
}

/// One query result: which image matched and how similar it is.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryHit {
    /// Identifier of the matching stored image.
    pub id: ImageId,
    /// Jaccard similarity in `[0, 1]`.
    pub similarity: f64,
}

/// Sorts hits by descending similarity with deterministic id tie-breaking
/// and truncates to `k`.
pub(crate) fn rank_hits(mut hits: Vec<QueryHit>, k: usize) -> Vec<QueryHit> {
    hits.sort_by(|a, b| {
        b.similarity
            .partial_cmp(&a.similarity)
            .expect("similarities are finite")
            .then(a.id.0.cmp(&b.id.0))
    });
    hits.truncate(k);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact() {
        assert_eq!(ImageId(42).to_string(), "img#42");
    }

    #[test]
    fn rank_hits_orders_and_truncates() {
        let hits = vec![
            QueryHit {
                id: ImageId(3),
                similarity: 0.5,
            },
            QueryHit {
                id: ImageId(1),
                similarity: 0.9,
            },
            QueryHit {
                id: ImageId(2),
                similarity: 0.5,
            },
        ];
        let ranked = rank_hits(hits, 2);
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].id, ImageId(1));
        // Tie at 0.5 broken toward the smaller id.
        assert_eq!(ranked[1].id, ImageId(2));
    }
}
