//! Deterministic sharding wrapper over any [`FeatureIndex`] backend.
//!
//! Images are partitioned over N inner indexes by `id % N`, so the shard an
//! image lands on — and therefore every shard's contents — is a pure
//! function of the inserted ids, never of timing or thread count. Queries
//! fan out to every shard in parallel; each shard returns its own ranked
//! top-`k`, and the per-shard lists are merged under the global total order
//! (descending similarity, ascending [`ImageId`]) and truncated to `k`.
//!
//! Because each shard's top-`k` is a superset of that shard's contribution
//! to the global top-`k`, the merged result is *exactly* the list an
//! unsharded index over the same images would return — the property the
//! fleet determinism tests pin down across shard counts 1/2/4. (The one
//! exception is a non-zero per-query candidate budget, which bounds work
//! per shard and therefore scales with the shard count; the server's
//! redundancy-detection path keeps the budget unlimited.)

use crate::scratch::QueryScratch;
use crate::store::{rank_hits, QueryHit};
use crate::{FeatureIndex, ImageId, Query};
use bees_features::similarity::SimilarityConfig;
use bees_features::ImageFeatures;
use bees_runtime::Runtime;

/// A fixed number of inner indexes, partitioned by `ImageId`.
///
/// # Examples
///
/// ```
/// use bees_index::{FeatureIndex, ImageId, MihIndex, ShardedIndex};
/// use bees_features::similarity::SimilarityConfig;
/// use bees_features::ImageFeatures;
///
/// let mut index = ShardedIndex::with_shards(4, || MihIndex::new(SimilarityConfig::default()));
/// index.insert(ImageId(9), ImageFeatures::empty_binary());
/// assert_eq!(index.len(), 1);
/// assert_eq!(index.n_shards(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedIndex<I> {
    shards: Vec<I>,
}

impl<I: FeatureIndex> ShardedIndex<I> {
    /// Wraps pre-built (typically empty) inner indexes as shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty.
    pub fn new(shards: Vec<I>) -> Self {
        assert!(!shards.is_empty(), "sharded index needs at least one shard");
        ShardedIndex { shards }
    }

    /// Builds `n` shards from a constructor closure.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_shards(n: usize, make: impl FnMut() -> I) -> Self {
        assert!(n > 0, "sharded index needs at least one shard");
        let mut make = make;
        ShardedIndex::new((0..n).map(|_| make()).collect())
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard `id` is assigned to: `id % n_shards`, a pure function of
    /// the id so shard contents never depend on insertion timing.
    pub fn shard_of(&self, id: ImageId) -> usize {
        (id.0 % self.shards.len() as u64) as usize
    }

    /// Read access to one shard (for the scaling experiment's reporting).
    pub fn shard(&self, s: usize) -> &I {
        &self.shards[s]
    }
}

impl<I: FeatureIndex + Send + Sync> FeatureIndex for ShardedIndex<I> {
    fn insert(&mut self, id: ImageId, features: ImageFeatures) {
        let s = self.shard_of(id);
        self.shards[s].insert(id, features);
    }

    /// Partitions the batch by shard and inserts into all shards
    /// concurrently. Equivalent to sequential insertion because the
    /// partition preserves each shard's relative item order and shards are
    /// independent.
    fn insert_batch(&mut self, items: Vec<(ImageId, ImageFeatures)>) {
        let n = self.shards.len();
        let mut buckets: Vec<Vec<(ImageId, ImageFeatures)>> = (0..n).map(|_| Vec::new()).collect();
        for (id, features) in items {
            let s = (id.0 % n as u64) as usize;
            buckets[s].push((id, features));
        }
        let mut work: Vec<(&mut I, Vec<(ImageId, ImageFeatures)>)> =
            self.shards.iter_mut().zip(buckets).collect();
        Runtime::current().par_for_each_mut(&mut work, |_, (shard, bucket)| {
            for (id, features) in bucket.drain(..) {
                shard.insert(id, features);
            }
        });
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    fn query(&self, query: &Query<'_>) -> Vec<QueryHit> {
        // Each shard ranks its own hits; merging per-shard top-k lists
        // under the same total order reproduces the unsharded result.
        let per_shard = Runtime::current().par_map(&self.shards, |shard| shard.query(query));
        rank_hits(per_shard.into_iter().flatten().collect(), query.k)
    }

    /// Fans out with one child scratch per shard, so each inner index
    /// recycles its own buffers across queries. Shard order is fixed, so a
    /// given shard always receives the same child scratch — and results
    /// stay byte-identical to [`query`](FeatureIndex::query) because
    /// scratch contents never influence scoring.
    fn query_with_scratch(&self, query: &Query<'_>, scratch: &mut QueryScratch) -> Vec<QueryHit> {
        scratch.ensure_shards(self.shards.len());
        let mut work: Vec<(&I, &mut QueryScratch, Vec<QueryHit>)> = self
            .shards
            .iter()
            .zip(scratch.shards.iter_mut())
            .map(|(shard, child)| (shard, child, Vec::new()))
            .collect();
        Runtime::current().par_for_each_mut(&mut work, |_, (shard, child, out)| {
            *out = shard.query_with_scratch(query, child);
        });
        rank_hits(
            work.into_iter().flat_map(|(_, _, hits)| hits).collect(),
            query.k,
        )
    }

    fn feature_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.feature_bytes()).sum()
    }

    fn similarity_config(&self) -> &SimilarityConfig {
        self.shards[0].similarity_config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinearIndex, MihIndex};
    use bees_features::descriptor::BinaryDescriptor;
    use bees_features::{Descriptors, Keypoint};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_features(rng: &mut ChaCha8Rng, n: usize) -> ImageFeatures {
        let descs: Vec<BinaryDescriptor> = (0..n)
            .map(|_| {
                let mut bytes = [0u8; 32];
                rng.fill(&mut bytes);
                BinaryDescriptor::from_bytes(bytes)
            })
            .collect();
        ImageFeatures {
            keypoints: descs.iter().map(|_| Keypoint::default()).collect(),
            descriptors: Descriptors::Binary(descs),
        }
    }

    /// Flips `k` bits of each descriptor.
    fn perturb(f: &ImageFeatures, rng: &mut ChaCha8Rng, k: usize) -> ImageFeatures {
        let Descriptors::Binary(descs) = &f.descriptors else {
            return f.clone();
        };
        let out: Vec<BinaryDescriptor> = descs
            .iter()
            .map(|d| {
                let mut bytes = *d.as_bytes();
                for _ in 0..k {
                    let bit = rng.gen_range(0..256usize);
                    bytes[bit / 8] ^= 1 << (bit % 8);
                }
                BinaryDescriptor::from_bytes(bytes)
            })
            .collect();
        ImageFeatures {
            keypoints: f.keypoints.clone(),
            descriptors: Descriptors::Binary(out),
        }
    }

    #[test]
    fn sharded_queries_match_unsharded_exactly() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let cfg = SimilarityConfig::default();
        let originals: Vec<ImageFeatures> =
            (0..24).map(|_| random_features(&mut rng, 10)).collect();
        let items: Vec<(ImageId, ImageFeatures)> = originals
            .iter()
            .enumerate()
            .map(|(i, f)| (ImageId(i as u64), f.clone()))
            .collect();

        let mut flat = MihIndex::new(cfg);
        flat.insert_batch(items.clone());
        for shards in [1usize, 2, 4, 7] {
            let mut idx = ShardedIndex::with_shards(shards, || MihIndex::new(cfg));
            idx.insert_batch(items.clone());
            assert_eq!(idx.len(), flat.len());
            for f in &originals {
                let noisy = perturb(f, &mut rng.clone(), 2);
                assert_eq!(
                    idx.query(&Query::top_k(&noisy, 5)),
                    flat.query(&Query::top_k(&noisy, 5)),
                    "shards={shards}"
                );
            }
        }
    }

    #[test]
    fn allow_list_is_applied_below_the_shard_merge() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let cfg = SimilarityConfig::default();
        let shared = random_features(&mut rng, 8);
        let items: Vec<(ImageId, ImageFeatures)> =
            (0..16u64).map(|i| (ImageId(i), shared.clone())).collect();
        let mut flat = MihIndex::new(cfg);
        flat.insert_batch(items.clone());
        let allowed: Vec<ImageId> = [3u64, 7, 8, 13].into_iter().map(ImageId).collect();
        let expect = flat.query(&Query::top_k(&shared, 10).with_allowed(&allowed));
        assert_eq!(expect.len(), 4);
        for shards in [2usize, 4] {
            let mut idx = ShardedIndex::with_shards(shards, || MihIndex::new(cfg));
            idx.insert_batch(items.clone());
            let got = idx.query(&Query::top_k(&shared, 10).with_allowed(&allowed));
            assert_eq!(got, expect, "shards={shards}");
            assert!(got.iter().all(|h| allowed.contains(&h.id)));
        }
    }

    #[test]
    fn insert_batch_partitions_by_id() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let mut idx =
            ShardedIndex::with_shards(3, || LinearIndex::new(SimilarityConfig::default()));
        let items: Vec<(ImageId, ImageFeatures)> = (0..9u64)
            .map(|i| (ImageId(i), random_features(&mut rng, 4)))
            .collect();
        idx.insert_batch(items);
        assert_eq!(idx.len(), 9);
        for s in 0..3 {
            assert_eq!(idx.shard(s).len(), 3, "shard {s}");
        }
        assert_eq!(idx.shard_of(ImageId(7)), 1);
    }

    #[test]
    fn reinsert_lands_on_the_same_shard() {
        let mut rng = ChaCha8Rng::seed_from_u64(29);
        let mut idx = ShardedIndex::with_shards(2, || MihIndex::new(SimilarityConfig::default()));
        let f1 = random_features(&mut rng, 6);
        let f2 = random_features(&mut rng, 6);
        idx.insert(ImageId(4), f1.clone());
        idx.insert(ImageId(4), f2.clone());
        assert_eq!(idx.len(), 1);
        assert!(idx.max_similarity(&f1).is_none());
        let hit = idx.max_similarity(&f2).unwrap();
        assert_eq!(hit.id, ImageId(4));
    }
}
