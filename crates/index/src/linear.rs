//! Exact linear-scan index.

use crate::store::{rank_hits, ImageEntry, ImageId, QueryHit};
use crate::{FeatureIndex, Query};
use bees_features::similarity::{jaccard_similarity, jaccard_similarity_blocks, SimilarityConfig};
use bees_features::{DescriptorBlock, ImageFeatures};

/// Exact index: every query is scored against every stored image.
///
/// This is what the paper's server effectively does; [`MihIndex`] exists to
/// show (and benchmark) that the scan can be accelerated.
///
/// [`MihIndex`]: crate::MihIndex
///
/// # Examples
///
/// ```
/// use bees_index::{FeatureIndex, ImageId, LinearIndex};
/// use bees_features::similarity::SimilarityConfig;
/// use bees_features::ImageFeatures;
///
/// let mut index = LinearIndex::new(SimilarityConfig::default());
/// index.insert(ImageId(7), ImageFeatures::empty_binary());
/// assert!(index.max_similarity(&ImageFeatures::empty_binary()).is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct LinearIndex {
    entries: Vec<ImageEntry>,
    /// SoA word blocks parallel to `entries` (`None` for vector feature
    /// sets), built once at insert so the scan streams contiguous words.
    blocks: Vec<Option<DescriptorBlock>>,
    config: SimilarityConfig,
}

impl LinearIndex {
    /// Creates an empty index with the given similarity configuration.
    pub fn new(config: SimilarityConfig) -> Self {
        LinearIndex {
            entries: Vec::new(),
            blocks: Vec::new(),
            config,
        }
    }

    /// Iterates over stored entries.
    pub fn iter(&self) -> impl Iterator<Item = &ImageEntry> {
        self.entries.iter()
    }

    /// Removes the entry for `id`, returning whether it existed.
    pub fn remove(&mut self, id: ImageId) -> bool {
        if let Some(pos) = self.entries.iter().position(|e| e.id == id) {
            self.entries.remove(pos);
            self.blocks.remove(pos);
            true
        } else {
            false
        }
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.blocks.clear();
    }
}

impl FeatureIndex for LinearIndex {
    fn insert(&mut self, id: ImageId, features: ImageFeatures) {
        let block = features.descriptors.to_block();
        if let Some(pos) = self.entries.iter().position(|e| e.id == id) {
            self.entries[pos].features = features;
            self.blocks[pos] = block;
        } else {
            self.entries.push(ImageEntry { id, features });
            self.blocks.push(block);
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn query(&self, query: &Query<'_>) -> Vec<QueryHit> {
        // Exact backend: the candidate budget does not apply — every stored
        // image is scored. Binary queries build their SoA block once and
        // score against the cached per-entry blocks; mixed or vector pairs
        // fall back to the general path (scores are bit-identical either
        // way — both routes bottom out in the same matcher).
        let qblock = query.features.descriptors.to_block();
        let hits = self
            .entries
            .iter()
            .zip(&self.blocks)
            .filter_map(|(e, b)| {
                if !query.is_allowed(e.id) {
                    return None;
                }
                let s = match (&qblock, b) {
                    (Some(qb), Some(tb)) => jaccard_similarity_blocks(qb, tb, &self.config),
                    _ => jaccard_similarity(query.features, &e.features, &self.config),
                };
                (s > 0.0).then_some(QueryHit {
                    id: e.id,
                    similarity: s,
                })
            })
            .collect();
        rank_hits(hits, query.k)
    }

    fn feature_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.features.wire_size()).sum()
    }

    fn similarity_config(&self) -> &SimilarityConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bees_features::descriptor::{BinaryDescriptor, Descriptors};
    use bees_features::Keypoint;

    fn features(seeds: &[usize]) -> ImageFeatures {
        let descs: Vec<BinaryDescriptor> = seeds
            .iter()
            .map(|&s| {
                let mut d = BinaryDescriptor::zero();
                for b in 0..8 {
                    d.set_bit((s * 29 + b * 31) % 256);
                }
                d
            })
            .collect();
        ImageFeatures {
            keypoints: descs.iter().map(|_| Keypoint::default()).collect(),
            descriptors: Descriptors::Binary(descs),
        }
    }

    #[test]
    fn insert_and_query_roundtrip() {
        let mut idx = LinearIndex::new(SimilarityConfig::default());
        idx.insert(ImageId(1), features(&[1, 2, 3, 4]));
        idx.insert(ImageId(2), features(&[10, 20, 30, 40]));
        let hit = idx.max_similarity(&features(&[1, 2, 3, 4])).unwrap();
        assert_eq!(hit.id, ImageId(1));
        assert!((hit.similarity - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reinsert_replaces() {
        let mut idx = LinearIndex::new(SimilarityConfig::default());
        idx.insert(ImageId(1), features(&[1, 2]));
        idx.insert(ImageId(1), features(&[5, 6]));
        assert_eq!(idx.len(), 1);
        let hit = idx.max_similarity(&features(&[5, 6])).unwrap();
        assert!((hit.similarity - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_index_returns_none() {
        let idx = LinearIndex::new(SimilarityConfig::default());
        assert!(idx.max_similarity(&features(&[1])).is_none());
        assert!(idx.top_k(&features(&[1]), 5).is_empty());
    }

    #[test]
    fn top_k_ranks_by_similarity() {
        let mut idx = LinearIndex::new(SimilarityConfig::default());
        // id 1 shares all 4, id 2 shares 2 of 4, id 3 shares none.
        idx.insert(ImageId(1), features(&[1, 2, 3, 4]));
        idx.insert(ImageId(2), features(&[1, 2, 90, 91]));
        idx.insert(ImageId(3), features(&[60, 61, 62, 63]));
        let hits = idx.top_k(&features(&[1, 2, 3, 4]), 10);
        assert!(hits.len() >= 2);
        assert_eq!(hits[0].id, ImageId(1));
        assert_eq!(hits[1].id, ImageId(2));
        assert!(hits[0].similarity > hits[1].similarity);
    }

    #[test]
    fn allow_list_filters_before_ranking() {
        use crate::Query;
        let mut idx = LinearIndex::new(SimilarityConfig::default());
        idx.insert(ImageId(1), features(&[1, 2, 3, 4]));
        idx.insert(ImageId(2), features(&[1, 2, 3, 4]));
        idx.insert(ImageId(3), features(&[1, 2, 3, 4]));
        let probe = features(&[1, 2, 3, 4]);
        let allowed = [ImageId(2)];
        let hits = idx.query(&Query::top_k(&probe, 5).with_allowed(&allowed));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, ImageId(2));
        // An empty allow-list blanks the result entirely.
        assert!(idx
            .query(&Query::top_k(&probe, 5).with_allowed(&[]))
            .is_empty());
    }

    #[test]
    fn remove_deletes_entry() {
        let mut idx = LinearIndex::new(SimilarityConfig::default());
        idx.insert(ImageId(1), features(&[1]));
        assert!(idx.remove(ImageId(1)));
        assert!(!idx.remove(ImageId(1)));
        assert!(idx.is_empty());
    }

    #[test]
    fn feature_bytes_accumulate() {
        let mut idx = LinearIndex::new(SimilarityConfig::default());
        assert_eq!(idx.feature_bytes(), 0);
        idx.insert(ImageId(1), features(&[1, 2]));
        let one = idx.feature_bytes();
        assert!(one > 0);
        idx.insert(ImageId(2), features(&[3, 4]));
        assert_eq!(idx.feature_bytes(), 2 * one);
    }
}
