#![warn(missing_docs)]

//! Server-side image feature index for the BEES reproduction.
//!
//! Cross-Batch Redundancy Detection (paper §III-B1) works by "querying the
//! server index": the client uploads an image's features, the server finds
//! the *maximum similarity* against every stored image, and the image is
//! declared redundant when that similarity exceeds the threshold `T`.
//! The Kentucky precision experiments additionally need top-k queries.
//!
//! Three backends are provided:
//!
//! * [`LinearIndex`] — exact: scores the query against every stored image,
//! * [`MihIndex`] — multi-index hashing over the four 64-bit words of each
//!   256-bit ORB descriptor: images sharing no descriptor word with the
//!   query (within the multi-probe radius) are skipped; survivors are
//!   rescored exactly,
//! * [`vocab::VocabIndex`] — a vocabulary tree (Nistér & Stewénius, the
//!   paper's reference [20]): hierarchical k-medoids quantization into
//!   visual words plus an inverted file, again with exact rescoring.
//!
//! Any backend can additionally be wrapped in a [`ShardedIndex`], which
//! partitions images over N inner indexes by `ImageId` and fans queries out
//! to every shard in parallel (merging in a deterministic total order), for
//! fleet-scale ingest.
//!
//! # Examples
//!
//! ```
//! use bees_index::{ImageId, LinearIndex, FeatureIndex, Query};
//! use bees_features::ImageFeatures;
//! use bees_features::similarity::SimilarityConfig;
//!
//! let mut index = LinearIndex::new(SimilarityConfig::default());
//! index.insert(ImageId(1), ImageFeatures::empty_binary());
//! assert_eq!(index.len(), 1);
//! let probe = ImageFeatures::empty_binary();
//! assert!(index.query(&Query::new(&probe)).is_empty());
//! ```

mod linear;
mod mih;
mod scratch;
mod sharded;
mod store;
pub mod vocab;

pub use linear::LinearIndex;
pub use mih::MihIndex;
pub use scratch::QueryScratch;
pub use sharded::ShardedIndex;
pub use store::{ImageEntry, ImageId, QueryHit};

use bees_features::similarity::SimilarityConfig;
use bees_features::ImageFeatures;

/// A similarity query: the probe features plus result and work budgets.
///
/// `k` caps how many hits come back; `max_candidates` caps how many
/// candidate images an *accelerated* backend will generate before exact
/// rescoring (`0` = unlimited). Exact backends ignore the candidate budget
/// — they score everything — so the budget trades recall for bounded work
/// only where a candidate stage exists.
///
/// Note: a non-zero `max_candidates` makes an accelerated backend's recall
/// depend on how images are partitioned, so sharded servers keep the
/// budget unlimited on the redundancy-detection path (see `DESIGN.md` §9).
#[derive(Debug, Clone, Copy)]
pub struct Query<'a> {
    /// Features to match against the stored images.
    pub features: &'a ImageFeatures,
    /// Maximum number of hits returned (result budget).
    pub k: usize,
    /// Candidate budget for accelerated backends; `0` means unlimited.
    pub max_candidates: usize,
    /// Optional id allow-list (sorted ascending): images outside it score
    /// as if absent. `None` means every stored image is eligible. This is
    /// how side-table predicates (geo radius, time window) are pushed
    /// *below* the shard merge — each shard drops disallowed ids before
    /// ranking, so the merged result equals filtering an unsharded scan.
    pub allowed: Option<&'a [ImageId]>,
}

impl<'a> Query<'a> {
    /// A max-similarity probe: best single hit, unlimited candidates.
    pub fn new(features: &'a ImageFeatures) -> Self {
        Query {
            features,
            k: 1,
            max_candidates: 0,
            allowed: None,
        }
    }

    /// A top-`k` probe with unlimited candidates.
    pub fn top_k(features: &'a ImageFeatures, k: usize) -> Self {
        Query {
            features,
            k,
            max_candidates: 0,
            allowed: None,
        }
    }

    /// Caps the candidate stage of accelerated backends at `budget` images
    /// (`0` = unlimited).
    #[must_use]
    pub fn with_max_candidates(mut self, budget: usize) -> Self {
        self.max_candidates = budget;
        self
    }

    /// Restricts scoring to `ids`, which **must be sorted ascending**
    /// (backends membership-test with binary search). Images outside the
    /// list are skipped before ranking.
    #[must_use]
    pub fn with_allowed(mut self, ids: &'a [ImageId]) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "allow-list unsorted");
        self.allowed = Some(ids);
        self
    }

    /// Whether `id` passes the allow-list (vacuously true without one).
    pub fn is_allowed(&self, id: ImageId) -> bool {
        match self.allowed {
            None => true,
            Some(ids) => ids.binary_search(&id).is_ok(),
        }
    }
}

/// A queryable image-feature index.
///
/// Implemented by [`LinearIndex`] (exact), [`MihIndex`] (accelerated),
/// [`vocab::VocabIndex`] (vocabulary tree), and [`ShardedIndex`]
/// (partitioned composition of any of them). Backends implement [`query`]
/// once; `max_similarity` and `top_k` are derived conveniences.
///
/// [`query`]: FeatureIndex::query
pub trait FeatureIndex {
    /// Inserts an image's features under `id`.
    ///
    /// Re-inserting an existing id replaces the stored features.
    fn insert(&mut self, id: ImageId, features: ImageFeatures);

    /// Inserts a batch of images. Sharded backends override this to build
    /// all shards concurrently; the result must equal (and for every
    /// in-tree backend does equal) inserting the items one by one in order.
    fn insert_batch(&mut self, items: Vec<(ImageId, ImageFeatures)>) {
        for (id, features) in items {
            self.insert(id, features);
        }
    }

    /// Number of indexed images.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs a query, returning up to `query.k` hits ordered by descending
    /// similarity with ascending-`ImageId` tie-breaking. Zero-score images
    /// are omitted. The ordering is a total order, so the result is unique
    /// — backends parallelizing internally must return exactly this list.
    fn query(&self, query: &Query<'_>) -> Vec<QueryHit>;

    /// [`query`](FeatureIndex::query) with caller-owned scratch buffers.
    ///
    /// Backends with per-query transient state ([`MihIndex`]'s merge heap
    /// and candidate list, [`ShardedIndex`]'s per-shard fan-out) override
    /// this to recycle `scratch` instead of allocating, and route their
    /// plain `query` through it with a throwaway scratch. Results are
    /// byte-identical to `query` — scratch contents never influence
    /// scoring. The default simply ignores `scratch`, so exact backends
    /// stay correct without an override.
    fn query_with_scratch(&self, query: &Query<'_>, scratch: &mut QueryScratch) -> Vec<QueryHit> {
        let _ = scratch;
        self.query(query)
    }

    /// Finds the stored image with the highest Jaccard similarity to
    /// `features`, or `None` when the index is empty or every score is
    /// zero.
    fn max_similarity(&self, features: &ImageFeatures) -> Option<QueryHit> {
        self.query(&Query::new(features)).into_iter().next()
    }

    /// Returns up to `k` hits ordered by descending similarity. Zero-score
    /// images are omitted.
    fn top_k(&self, features: &ImageFeatures, k: usize) -> Vec<QueryHit> {
        self.query(&Query::top_k(features, k))
    }

    /// Total stored feature payload in bytes (Table I's space overhead).
    fn feature_bytes(&self) -> usize;

    /// Similarity configuration used for scoring.
    fn similarity_config(&self) -> &SimilarityConfig;
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        fn _takes_dyn(_i: &dyn FeatureIndex) {}
    }

    #[test]
    fn query_builder_sets_budgets() {
        let f = ImageFeatures::empty_binary();
        let q = Query::top_k(&f, 7).with_max_candidates(100);
        assert_eq!(q.k, 7);
        assert_eq!(q.max_candidates, 100);
        assert_eq!(Query::new(&f).k, 1);
        assert_eq!(Query::new(&f).max_candidates, 0);
        assert!(Query::new(&f).allowed.is_none());
    }

    #[test]
    fn allow_list_membership_is_binary_searched() {
        let f = ImageFeatures::empty_binary();
        let ids = [ImageId(2), ImageId(5), ImageId(9)];
        let q = Query::new(&f).with_allowed(&ids);
        assert!(q.is_allowed(ImageId(2)));
        assert!(q.is_allowed(ImageId(9)));
        assert!(!q.is_allowed(ImageId(4)));
        // No allow-list admits everything.
        assert!(Query::new(&f).is_allowed(ImageId(4)));
    }
}
