#![warn(missing_docs)]

//! Server-side image feature index for the BEES reproduction.
//!
//! Cross-Batch Redundancy Detection (paper §III-B1) works by "querying the
//! server index": the client uploads an image's features, the server finds
//! the *maximum similarity* against every stored image, and the image is
//! declared redundant when that similarity exceeds the threshold `T`.
//! The Kentucky precision experiments additionally need top-k queries.
//!
//! Three backends are provided:
//!
//! * [`LinearIndex`] — exact: scores the query against every stored image,
//! * [`MihIndex`] — multi-index hashing over the four 64-bit words of each
//!   256-bit ORB descriptor: images sharing no descriptor word with the
//!   query (within the multi-probe radius) are skipped; survivors are
//!   rescored exactly,
//! * [`vocab::VocabIndex`] — a vocabulary tree (Nistér & Stewénius, the
//!   paper's reference [20]): hierarchical k-medoids quantization into
//!   visual words plus an inverted file, again with exact rescoring.
//!
//! # Examples
//!
//! ```
//! use bees_index::{ImageId, LinearIndex, FeatureIndex};
//! use bees_features::ImageFeatures;
//! use bees_features::similarity::SimilarityConfig;
//!
//! let mut index = LinearIndex::new(SimilarityConfig::default());
//! index.insert(ImageId(1), ImageFeatures::empty_binary());
//! assert_eq!(index.len(), 1);
//! ```

mod linear;
mod mih;
mod store;
pub mod vocab;

pub use linear::LinearIndex;
pub use mih::MihIndex;
pub use store::{ImageEntry, ImageId, QueryHit};

use bees_features::similarity::SimilarityConfig;
use bees_features::ImageFeatures;

/// A queryable image-feature index.
///
/// Implemented by [`LinearIndex`] (exact) and [`MihIndex`] (accelerated).
pub trait FeatureIndex {
    /// Inserts an image's features under `id`.
    ///
    /// Re-inserting an existing id replaces the stored features.
    fn insert(&mut self, id: ImageId, features: ImageFeatures);

    /// Number of indexed images.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finds the stored image with the highest Jaccard similarity to
    /// `query`, or `None` when the index is empty or every score is zero.
    fn max_similarity(&self, query: &ImageFeatures) -> Option<QueryHit>;

    /// Returns up to `k` hits ordered by descending similarity. Zero-score
    /// images are omitted.
    fn top_k(&self, query: &ImageFeatures, k: usize) -> Vec<QueryHit>;

    /// Total stored feature payload in bytes (Table I's space overhead).
    fn feature_bytes(&self) -> usize;

    /// Similarity configuration used for scoring.
    fn similarity_config(&self) -> &SimilarityConfig;
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        fn _takes_dyn(_i: &dyn FeatureIndex) {}
    }
}
