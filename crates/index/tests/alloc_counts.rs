//! Pins the scratch-arena contract: a warmed `candidates_into` call makes
//! a small constant number of allocations, independent of index size.
//! Measured with a counting global allocator (the `bees-telemetry`
//! `no_alloc` pattern) rather than asserted by inspection.
//!
//! The budget is 2: one bounded table of borrowed posting-list slices
//! (whose lifetime is tied to the index borrow, so it cannot live in the
//! scratch; its capacity comes from the scratch's high-water mark) plus
//! slack for an incidental grow. Everything else — merge heap, cursors,
//! candidate list — must recycle the scratch's buffers.

use bees_features::descriptor::{BinaryDescriptor, Descriptors};
use bees_features::similarity::SimilarityConfig;
use bees_features::{ImageFeatures, Keypoint};
use bees_index::{FeatureIndex, ImageId, MihIndex, QueryScratch};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::SeqCst)
}

fn random_features(rng: &mut ChaCha8Rng, n: usize) -> ImageFeatures {
    let descs: Vec<BinaryDescriptor> = (0..n)
        .map(|_| {
            let mut bytes = [0u8; 32];
            rng.fill(&mut bytes);
            BinaryDescriptor::from_bytes(bytes)
        })
        .collect();
    ImageFeatures {
        keypoints: descs.iter().map(|_| Keypoint::default()).collect(),
        descriptors: Descriptors::Binary(descs),
    }
}

fn build(seed: u64, n_images: usize) -> (MihIndex, ImageFeatures) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut idx = MihIndex::new(SimilarityConfig::default());
    let shared = random_features(&mut rng, 10);
    for i in 0..n_images {
        // Every image shares the probe's words, so every posting list is
        // probed and every image becomes a candidate — the worst case for
        // merge-state size.
        idx.insert(ImageId(i as u64), shared.clone());
    }
    (idx, shared)
}

/// Warmed-call allocation budget: the borrowed posting-list table plus one
/// of slack.
const WARMED_ALLOC_BUDGET: usize = 2;

fn warmed_alloc_count(idx: &MihIndex, probe: &ImageFeatures, scratch: &mut QueryScratch) -> usize {
    // Two warmup calls grow every buffer (and the lists-table capacity
    // hint) to steady state.
    idx.candidates_into(probe, 0, scratch);
    idx.candidates_into(probe, 0, scratch);
    let before = allocations();
    idx.candidates_into(probe, 0, scratch);
    allocations() - before
}

#[test]
fn warmed_candidate_merge_allocation_is_constant_in_index_size() {
    // Single test so no concurrent test thread can perturb the counter.
    let (small_idx, small_probe) = build(61, 8);
    let (large_idx, large_probe) = build(61, 64);
    assert_eq!(large_idx.len(), 64);

    let mut scratch = QueryScratch::new();
    let small = warmed_alloc_count(&small_idx, &small_probe, &mut scratch);
    assert!(
        small <= WARMED_ALLOC_BUDGET,
        "small index: {small} allocations on a warmed candidates_into call"
    );

    let mut scratch = QueryScratch::new();
    let large = warmed_alloc_count(&large_idx, &large_probe, &mut scratch);
    assert!(
        large <= WARMED_ALLOC_BUDGET,
        "large index: {large} allocations on a warmed candidates_into call"
    );
    // 8x the images and candidates must not add allocations.
    assert!(
        large <= small.max(1),
        "allocation count grew with index size: {small} -> {large}"
    );
}
