//! Property-based tests of the index backends: the MIH accelerator must
//! agree with the exact linear scan whenever descriptor noise stays within
//! its word-collision guarantee, and both must behave like indexes.

use bees_features::descriptor::BinaryDescriptor;
use bees_features::similarity::SimilarityConfig;
use bees_features::{Descriptors, ImageFeatures, Keypoint};
use bees_index::{FeatureIndex, ImageId, LinearIndex, MihIndex};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_features(rng: &mut ChaCha8Rng, n: usize) -> ImageFeatures {
    let descs: Vec<BinaryDescriptor> = (0..n)
        .map(|_| {
            let mut bytes = [0u8; 32];
            rng.fill(&mut bytes);
            BinaryDescriptor::from_bytes(bytes)
        })
        .collect();
    ImageFeatures {
        keypoints: descs.iter().map(|_| Keypoint::default()).collect(),
        descriptors: Descriptors::Binary(descs),
    }
}

/// Flips up to `k` bits per descriptor (k <= 3 keeps the MIH pigeonhole
/// guarantee: some 64-bit word stays identical).
fn perturb(f: &ImageFeatures, rng: &mut ChaCha8Rng, k: usize) -> ImageFeatures {
    let Descriptors::Binary(descs) = &f.descriptors else {
        unreachable!()
    };
    let out: Vec<BinaryDescriptor> = descs
        .iter()
        .map(|d| {
            let mut bytes = *d.as_bytes();
            for _ in 0..k {
                let bit = rng.gen_range(0..256);
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
            BinaryDescriptor::from_bytes(bytes)
        })
        .collect();
    ImageFeatures {
        keypoints: f.keypoints.clone(),
        descriptors: Descriptors::Binary(out),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mih_matches_linear_within_guarantee(seed in any::<u64>(), n_images in 1usize..10, flips in 0usize..=3) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cfg = SimilarityConfig::default();
        let mut lin = LinearIndex::new(cfg);
        let mut mih = MihIndex::new(cfg);
        let mut originals = Vec::new();
        for i in 0..n_images {
            let f = random_features(&mut rng, 12);
            lin.insert(ImageId(i as u64), f.clone());
            mih.insert(ImageId(i as u64), f.clone());
            originals.push(f);
        }
        for f in &originals {
            let query = perturb(f, &mut rng, flips);
            let lh = lin.max_similarity(&query);
            let mh = mih.max_similarity(&query);
            match (lh, mh) {
                (Some(l), Some(m)) => {
                    prop_assert_eq!(l.id, m.id);
                    prop_assert!((l.similarity - m.similarity).abs() < 1e-12);
                }
                (None, None) => {}
                other => prop_assert!(false, "backends disagree: {:?}", other),
            }
        }
    }

    #[test]
    fn top_k_is_sorted_and_bounded(seed in any::<u64>(), n_images in 0usize..8, k in 0usize..10) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut idx = LinearIndex::new(SimilarityConfig::default());
        for i in 0..n_images {
            let f = random_features(&mut rng, 8);
            idx.insert(ImageId(i as u64), f);
        }
        let query = random_features(&mut rng, 8);
        let hits = idx.top_k(&query, k);
        prop_assert!(hits.len() <= k.min(n_images));
        for w in hits.windows(2) {
            prop_assert!(w[0].similarity >= w[1].similarity);
        }
        for h in &hits {
            prop_assert!(h.similarity > 0.0 && h.similarity <= 1.0);
        }
    }

    #[test]
    fn vocab_tree_hits_are_a_subset_of_linear(seed in any::<u64>(), n_images in 1usize..8) {
        use bees_index::vocab::{VocabConfig, VocabIndex, Vocabulary};
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cfg = SimilarityConfig::default();
        // Train on a pooled sample, then index random images in both
        // backends.
        let sample = {
            let f = random_features(&mut rng, 200);
            match f.descriptors {
                Descriptors::Binary(d) => d,
                _ => unreachable!(),
            }
        };
        let vocab = Vocabulary::train(&sample, VocabConfig::default());
        let mut lin = LinearIndex::new(cfg);
        let mut vt = VocabIndex::new(cfg, vocab);
        let mut originals = Vec::new();
        for i in 0..n_images {
            let f = random_features(&mut rng, 10);
            lin.insert(ImageId(i as u64), f.clone());
            vt.insert(ImageId(i as u64), f.clone());
            originals.push(f);
        }
        for f in &originals {
            // Exact re-query: the duplicate shares every visual word, so
            // the tree must find it with the same exact score as linear.
            let lh = lin.max_similarity(f).expect("duplicate indexed");
            let vh = vt.max_similarity(f).expect("vocab must find exact duplicates");
            prop_assert!((lh.similarity - vh.similarity).abs() < 1e-12);
            prop_assert!(vh.similarity >= 1.0 - 1e-12);
            // And on arbitrary queries the tree never outscores linear.
            let probe = random_features(&mut rng, 10);
            let lp = lin.max_similarity(&probe).map(|h| h.similarity).unwrap_or(0.0);
            let vp = vt.max_similarity(&probe).map(|h| h.similarity).unwrap_or(0.0);
            prop_assert!(vp <= lp + 1e-12, "vocab {vp} outscored linear {lp}");
        }
    }

    #[test]
    fn inserts_accumulate_and_replace(seed in any::<u64>(), ids in proptest::collection::vec(0u64..6, 1..15)) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut idx = MihIndex::new(SimilarityConfig::default());
        for &id in &ids {
            idx.insert(ImageId(id), random_features(&mut rng, 4));
        }
        let mut unique = ids.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(idx.len(), unique.len());
    }
}
