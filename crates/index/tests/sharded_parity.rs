//! Sharded-index parity under interleaved multi-device ingest.
//!
//! Simulates several "devices" inserting in an interleaved order and checks
//! that (a) MIH agrees with the exact linear scan whenever descriptor noise
//! stays within its word-collision guarantee, and (b) the answers are
//! independent of the shard count — the property the fleet-scale server
//! relies on. Deliberately not property-based (no proptest) so it runs in
//! minimal environments.

use bees_features::descriptor::BinaryDescriptor;
use bees_features::similarity::SimilarityConfig;
use bees_features::{Descriptors, ImageFeatures, Keypoint};
use bees_index::{FeatureIndex, ImageId, LinearIndex, MihIndex, Query, ShardedIndex};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_features(rng: &mut ChaCha8Rng, n: usize) -> ImageFeatures {
    let descs: Vec<BinaryDescriptor> = (0..n)
        .map(|_| {
            let mut bytes = [0u8; 32];
            rng.fill(&mut bytes);
            BinaryDescriptor::from_bytes(bytes)
        })
        .collect();
    ImageFeatures {
        keypoints: descs.iter().map(|_| Keypoint::default()).collect(),
        descriptors: Descriptors::Binary(descs),
    }
}

/// Flips up to `k` bits per descriptor (`k <= 3` keeps the MIH pigeonhole
/// guarantee: some 64-bit word stays identical).
fn perturb(f: &ImageFeatures, rng: &mut ChaCha8Rng, k: usize) -> ImageFeatures {
    let Descriptors::Binary(descs) = &f.descriptors else {
        panic!("binary features expected");
    };
    let out: Vec<BinaryDescriptor> = descs
        .iter()
        .map(|d| {
            let mut bytes = *d.as_bytes();
            for _ in 0..k {
                let bit = rng.gen_range(0..256usize);
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
            BinaryDescriptor::from_bytes(bytes)
        })
        .collect();
    ImageFeatures {
        keypoints: f.keypoints.clone(),
        descriptors: Descriptors::Binary(out),
    }
}

/// An interleaved multi-device upload stream: device `d` contributes ids
/// `d, d + n_devices, d + 2*n_devices, ...` and the stream round-robins
/// between devices in bursts, like the fleet's event queue does.
fn interleaved_stream(
    rng: &mut ChaCha8Rng,
    n_devices: usize,
    per_device: usize,
) -> Vec<(ImageId, ImageFeatures)> {
    let mut per_dev: Vec<Vec<(ImageId, ImageFeatures)>> = (0..n_devices)
        .map(|d| {
            (0..per_device)
                .map(|i| (ImageId((i * n_devices + d) as u64), random_features(rng, 8)))
                .collect()
        })
        .collect();
    let mut out = Vec::with_capacity(n_devices * per_device);
    let mut turn = 0usize;
    while per_dev.iter().any(|v| !v.is_empty()) {
        let d = turn % n_devices;
        let burst = 1 + (turn % 3); // uneven bursts, still deterministic
        for _ in 0..burst {
            if let Some(item) = per_dev[d].pop() {
                out.push(item);
            }
        }
        turn += 1;
    }
    out
}

#[test]
fn mih_matches_linear_at_every_shard_count() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF1EE7);
    let cfg = SimilarityConfig::default();
    let stream = interleaved_stream(&mut rng, 3, 10);

    let mut linear = LinearIndex::new(cfg);
    linear.insert_batch(stream.clone());

    // Queries: noisy views of stored images (within MIH's guarantee) plus
    // some unrelated probes.
    let mut queries: Vec<ImageFeatures> = stream
        .iter()
        .step_by(4)
        .map(|(_, f)| perturb(f, &mut rng, 3))
        .collect();
    queries.extend((0..5).map(|_| random_features(&mut rng, 8)));

    for shards in [1usize, 2, 4] {
        let mut idx = ShardedIndex::with_shards(shards, || MihIndex::new(cfg));
        idx.insert_batch(stream.clone());
        assert_eq!(idx.len(), linear.len());
        for (qi, q) in queries.iter().enumerate() {
            let got = idx.query(&Query::top_k(q, 5));
            let want = linear.query(&Query::top_k(q, 5));
            assert_eq!(got, want, "shards={shards} query={qi}");
        }
    }
}

#[test]
fn shard_count_never_changes_unbudgeted_answers() {
    // Same stream, shard counts 1/2/4 against each other (no linear
    // reference): the merged per-shard rankings must be literally equal.
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let cfg = SimilarityConfig::default();
    let stream = interleaved_stream(&mut rng, 4, 8);
    let queries: Vec<ImageFeatures> = (0..8)
        .map(|i| {
            if i % 2 == 0 {
                perturb(&stream[i].1, &mut rng, 2)
            } else {
                random_features(&mut rng, 8)
            }
        })
        .collect();

    let answers: Vec<Vec<_>> = [1usize, 2, 4]
        .iter()
        .map(|&shards| {
            let mut idx = ShardedIndex::with_shards(shards, || MihIndex::new(cfg));
            idx.insert_batch(stream.clone());
            queries
                .iter()
                .map(|q| idx.query(&Query::top_k(q, 3)))
                .collect()
        })
        .collect();
    assert_eq!(answers[0], answers[1]);
    assert_eq!(answers[0], answers[2]);
}

#[test]
fn insertion_order_does_not_matter() {
    // The same id set inserted in two different interleavings must produce
    // identical indexes (queries agree), because shard assignment is a pure
    // function of the id.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let cfg = SimilarityConfig::default();
    let stream = interleaved_stream(&mut rng, 3, 8);
    let mut reversed = stream.clone();
    reversed.reverse();

    let mut a = ShardedIndex::with_shards(4, || MihIndex::new(cfg));
    a.insert_batch(stream.clone());
    let mut b = ShardedIndex::with_shards(4, || MihIndex::new(cfg));
    b.insert_batch(reversed);

    for (_, f) in stream.iter().take(10) {
        let q = perturb(f, &mut rng, 2);
        assert_eq!(a.query(&Query::top_k(&q, 4)), b.query(&Query::top_k(&q, 4)));
    }
}
