//! Scratch-reuse and SoA-rescoring parity for the index backends.
//!
//! Seeded (non-proptest) property tests pinning:
//!
//! * `query_with_scratch` == `query` on every backend — a reused, warmed
//!   scratch never changes a result;
//! * MIH (SoA-batched rescoring) == linear scan (the exact reference) on
//!   noisy duplicates, across thread counts 1/2/8 and shard counts 1/2/4;
//! * `candidates_into` == `candidates_budgeted` for every budget.
//!
//! `set_threads` is global and races across test threads by design: every
//! assertion is a thread-count-invariance claim.

use bees_features::descriptor::{BinaryDescriptor, Descriptors};
use bees_features::similarity::SimilarityConfig;
use bees_features::{ImageFeatures, Keypoint};
use bees_index::{FeatureIndex, ImageId, LinearIndex, MihIndex, Query, QueryScratch, ShardedIndex};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_features(rng: &mut ChaCha8Rng, n: usize) -> ImageFeatures {
    let descs: Vec<BinaryDescriptor> = (0..n)
        .map(|_| {
            let mut bytes = [0u8; 32];
            rng.fill(&mut bytes);
            BinaryDescriptor::from_bytes(bytes)
        })
        .collect();
    ImageFeatures {
        keypoints: descs.iter().map(|_| Keypoint::default()).collect(),
        descriptors: Descriptors::Binary(descs),
    }
}

/// Flips `k` bits of each descriptor.
fn perturb(f: &ImageFeatures, rng: &mut ChaCha8Rng, k: usize) -> ImageFeatures {
    let Descriptors::Binary(descs) = &f.descriptors else {
        return f.clone();
    };
    let out: Vec<BinaryDescriptor> = descs
        .iter()
        .map(|d| {
            let mut bytes = *d.as_bytes();
            for _ in 0..k {
                let bit = rng.gen_range(0..256usize);
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
            BinaryDescriptor::from_bytes(bytes)
        })
        .collect();
    ImageFeatures {
        keypoints: f.keypoints.clone(),
        descriptors: Descriptors::Binary(out),
    }
}

fn corpus(seed: u64, n_images: usize, n_descs: usize) -> Vec<(ImageId, ImageFeatures)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n_images)
        .map(|i| (ImageId(i as u64), random_features(&mut rng, n_descs)))
        .collect()
}

#[test]
fn scratch_reuse_never_changes_results() {
    let items = corpus(31, 24, 12);
    let cfg = SimilarityConfig::default();
    let mut rng = ChaCha8Rng::seed_from_u64(32);

    let mut linear = LinearIndex::new(cfg);
    linear.insert_batch(items.clone());
    let mut mih = MihIndex::new(cfg);
    mih.insert_batch(items.clone());
    let mut sharded = ShardedIndex::with_shards(3, || MihIndex::new(cfg));
    sharded.insert_batch(items.clone());

    let backends: Vec<(&str, &dyn FeatureIndex)> =
        vec![("linear", &linear), ("mih", &mih), ("sharded3", &sharded)];
    // One scratch per backend, reused across all queries (warm reuse is
    // exactly the server's pattern).
    let mut scratches = vec![
        QueryScratch::new(),
        QueryScratch::new(),
        QueryScratch::new(),
    ];
    for round in 0..3 {
        for (i, f) in items.iter().map(|(_, f)| f).enumerate() {
            let noisy = perturb(f, &mut rng, 2);
            for ((name, idx), scratch) in backends.iter().zip(scratches.iter_mut()) {
                let q = Query::top_k(&noisy, 5);
                assert_eq!(
                    idx.query_with_scratch(&q, scratch),
                    idx.query(&q),
                    "{name}: round {round} probe {i}"
                );
            }
        }
    }
}

#[test]
fn mih_soa_rescoring_matches_linear_across_threads_and_shards() {
    let items = corpus(41, 20, 10);
    let cfg = SimilarityConfig::default();
    let mut linear = LinearIndex::new(cfg);
    linear.insert_batch(items.clone());

    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let probes: Vec<ImageFeatures> = items.iter().map(|(_, f)| perturb(f, &mut rng, 2)).collect();
    let reference: Vec<_> = probes
        .iter()
        .map(|p| linear.query(&Query::top_k(p, 4)))
        .collect();

    for shards in [1usize, 2, 4] {
        let mut idx = ShardedIndex::with_shards(shards, || MihIndex::new(cfg));
        idx.insert_batch(items.clone());
        let mut scratch = QueryScratch::new();
        for threads in [1usize, 2, 8] {
            bees_runtime::set_threads(threads);
            for (p, r) in probes.iter().zip(&reference) {
                assert_eq!(
                    idx.query_with_scratch(&Query::top_k(p, 4), &mut scratch),
                    *r,
                    "shards {shards} threads {threads}"
                );
            }
        }
        bees_runtime::set_threads(0);
    }
}

#[test]
fn candidates_into_matches_candidates_budgeted() {
    let items = corpus(51, 30, 8);
    let cfg = SimilarityConfig::default();
    let mut mih = MihIndex::new(cfg);
    mih.insert_batch(items.clone());
    let mut rng = ChaCha8Rng::seed_from_u64(52);
    let mut scratch = QueryScratch::new();
    for (_, f) in &items {
        let noisy = perturb(f, &mut rng, 1);
        for budget in [0usize, 1, 3, 100] {
            mih.candidates_into(&noisy, budget, &mut scratch);
            assert_eq!(
                scratch.candidates(),
                mih.candidates_budgeted(&noisy, budget).as_slice(),
                "budget {budget}"
            );
        }
    }
    // A candidate-less query must clear any stale ids in the scratch.
    let empty = ImageFeatures::empty_binary();
    mih.candidates_into(&empty, 0, &mut scratch);
    assert!(scratch.candidates().is_empty());
}
