#![warn(missing_docs)]

//! The Similarity-aware Submodular Maximization Model (SSMM).
//!
//! BEES' answer to **in-batch** redundancy (paper §III-B2): a batch of
//! images is a weighted graph `G = (V, E, w)` whose edge weights are
//! pairwise Jaccard similarities. Selecting the subset `S ⊆ V` that best
//! summarizes the batch is submodular maximization under a cardinality
//! budget — NP-complete in general, but a greedy algorithm achieves the
//! `(1 − 1/e) ≈ 0.632` worst-case guarantee for monotone submodular
//! objectives.
//!
//! SSMM's twist is the **budget**: instead of a user-fixed `b`, it cuts all
//! edges below a threshold `Tw` (itself energy-adaptive, same form as EDR)
//! and uses the number of resulting connected subgraphs as `b` — the more
//! similar a batch, the fewer subgraphs, the smaller the summary.
//!
//! * [`SimilarityGraph`] — dense symmetric weight matrix,
//! * [`partition_by_threshold`] — the `Tw` cut into connected subgraphs,
//! * [`CoverageFunction`] / [`DiversityFunction`] / [`WeightedObjective`] —
//!   the paper's `f_cov`, `f_div`, and their weighted sum,
//! * [`greedy_maximize`] / [`lazy_greedy_maximize`] — Algorithm 1's greedy
//!   selection (the lazy variant exploits submodularity for speed),
//! * [`Ssmm`] — the assembled model.
//!
//! # Examples
//!
//! ```
//! use bees_submodular::{SimilarityGraph, Ssmm, SsmmConfig};
//!
//! // Four images: 0 and 1 near-duplicates, 2 and 3 unique.
//! let mut g = SimilarityGraph::new(4);
//! g.set_weight(0, 1, 0.8);
//! g.set_weight(2, 3, 0.01);
//! let summary = Ssmm::new(SsmmConfig::default()).summarize(&g, 0.05);
//! assert_eq!(summary.budget, 3); // {0,1}, {2}, {3}
//! assert_eq!(summary.selected.len(), 3);
//! ```

mod functions;
mod graph;
mod greedy;
mod ssmm;

pub use functions::{CoverageFunction, DiversityFunction, SubmodularFunction, WeightedObjective};
pub use graph::{partition_by_threshold, SimilarityGraph};
pub use greedy::{brute_force_maximize, greedy_maximize, lazy_greedy_maximize};
pub use ssmm::{Ssmm, SsmmConfig, SsmmSummary};
