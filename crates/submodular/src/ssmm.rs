//! The assembled SSMM: Algorithm 1 of the paper.

use crate::functions::{
    CoverageFunction, DiversityFunction, SubmodularFunction, WeightedObjective,
};
use crate::graph::{partition_by_threshold, SimilarityGraph};
use crate::greedy::lazy_greedy_maximize;
use serde::{Deserialize, Serialize};

/// SSMM tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SsmmConfig {
    /// Weight of the coverage term.
    pub lambda_coverage: f64,
    /// Weight of the diversity term.
    pub lambda_diversity: f64,
}

impl Default for SsmmConfig {
    fn default() -> Self {
        // Diversity is scaled up so that representing a new subgraph beats
        // marginally improving coverage inside an already-covered one.
        SsmmConfig {
            lambda_coverage: 1.0,
            lambda_diversity: 2.0,
        }
    }
}

/// Output of one SSMM run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsmmSummary {
    /// Selected image indices (the unique subset to upload), in greedy
    /// pick order.
    pub selected: Vec<usize>,
    /// The adaptive budget `b` = number of partitioned subgraphs.
    pub budget: usize,
    /// The threshold-cut partition of the batch.
    pub partitions: Vec<Vec<usize>>,
    /// Objective value `F(selected)`.
    pub objective: f64,
}

/// The Similarity-aware Submodular Maximization Model.
///
/// # Examples
///
/// ```
/// use bees_submodular::{SimilarityGraph, Ssmm, SsmmConfig};
///
/// let mut g = SimilarityGraph::new(3);
/// g.set_weight(0, 1, 0.9); // near-duplicates
/// let summary = Ssmm::new(SsmmConfig::default()).summarize(&g, 0.5);
/// // Budget 2: one of {0, 1} plus {2}.
/// assert_eq!(summary.budget, 2);
/// assert!(summary.selected.contains(&2));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Ssmm {
    config: SsmmConfig,
}

impl Ssmm {
    /// Creates the model with the given weights.
    pub fn new(config: SsmmConfig) -> Self {
        Ssmm { config }
    }

    /// Runs Algorithm 1: partition `graph` at `tw`, take the number of
    /// subgraphs as the budget, and greedily maximize
    /// `λ_cov · f_cov + λ_div · f_div`.
    ///
    /// `tw` is the energy-adaptive threshold (`Tw = T0 + k·Ebat`); pass the
    /// value of `bees_energy::LinearScheme::edr` evaluated at the current
    /// battery fraction.
    pub fn summarize(&self, graph: &SimilarityGraph, tw: f64) -> SsmmSummary {
        let partitions = partition_by_threshold(graph, tw);
        let budget = partitions.len();
        self.summarize_partitioned(graph, partitions, budget)
    }

    /// The ablation the paper argues against (§III-B2): a user-fixed budget
    /// `b` instead of the similarity-adaptive one. The partition (and thus
    /// the diversity term) still comes from `tw`, but the selection stops
    /// at `min(b, |V|)` images regardless of how many subgraphs exist.
    ///
    /// With `b` below the subgraph count the summary under-covers; above
    /// it, redundant images slip through — which is exactly why SSMM
    /// derives the budget from the partition.
    pub fn summarize_with_fixed_budget(
        &self,
        graph: &SimilarityGraph,
        tw: f64,
        budget: usize,
    ) -> SsmmSummary {
        let partitions = partition_by_threshold(graph, tw);
        let budget = budget.min(graph.len());
        self.summarize_partitioned(graph, partitions, budget)
    }

    fn summarize_partitioned(
        &self,
        graph: &SimilarityGraph,
        partitions: Vec<Vec<usize>>,
        budget: usize,
    ) -> SsmmSummary {
        let coverage = CoverageFunction::new(graph);
        let diversity = DiversityFunction::new(&partitions);
        let objective = WeightedObjective::new(vec![
            (
                self.config.lambda_coverage,
                &coverage as &dyn SubmodularFunction,
            ),
            (self.config.lambda_diversity, &diversity),
        ]);
        let selected = lazy_greedy_maximize(&objective, budget);
        let value = objective.eval(&selected);
        SsmmSummary {
            selected,
            budget,
            partitions,
            objective: value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_collapsed() {
        // Batch of 6: {0,1,2} mutually similar, {3,4} similar, {5} unique.
        let mut g = SimilarityGraph::new(6);
        for &(i, j) in &[(0, 1), (0, 2), (1, 2)] {
            g.set_weight(i, j, 0.8);
        }
        g.set_weight(3, 4, 0.7);
        let s = Ssmm::default().summarize(&g, 0.3);
        assert_eq!(s.budget, 3);
        assert_eq!(s.selected.len(), 3);
        // Exactly one from each cluster.
        let from_a = s.selected.iter().filter(|&&v| v <= 2).count();
        let from_b = s.selected.iter().filter(|&&v| v == 3 || v == 4).count();
        let from_c = s.selected.iter().filter(|&&v| v == 5).count();
        assert_eq!((from_a, from_b, from_c), (1, 1, 1));
    }

    #[test]
    fn all_unique_batch_is_kept_whole() {
        let g = SimilarityGraph::new(5); // no edges at all
        let s = Ssmm::default().summarize(&g, 0.1);
        assert_eq!(s.budget, 5);
        let mut sel = s.selected.clone();
        sel.sort_unstable();
        assert_eq!(sel, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn all_identical_batch_keeps_one() {
        let g = SimilarityGraph::from_pairwise(8, |_, _| 0.95);
        let s = Ssmm::default().summarize(&g, 0.5);
        assert_eq!(s.budget, 1);
        assert_eq!(s.selected.len(), 1);
    }

    #[test]
    fn higher_tw_keeps_more_images() {
        let g =
            SimilarityGraph::from_pairwise(10, |i, j| if (i / 2) == (j / 2) { 0.4 } else { 0.0 });
        let low = Ssmm::default().summarize(&g, 0.2);
        let high = Ssmm::default().summarize(&g, 0.6);
        assert!(high.budget >= low.budget);
        assert!(high.selected.len() >= low.selected.len());
        assert_eq!(low.budget, 5);
        assert_eq!(high.budget, 10);
    }

    #[test]
    fn single_image_batch() {
        let g = SimilarityGraph::new(1);
        let s = Ssmm::default().summarize(&g, 0.5);
        assert_eq!(s.selected, vec![0]);
        assert_eq!(s.budget, 1);
    }

    #[test]
    fn objective_value_is_reported() {
        let g = SimilarityGraph::from_pairwise(4, |_, _| 0.5);
        let s = Ssmm::default().summarize(&g, 0.9);
        assert!(s.objective > 0.0);
    }

    #[test]
    fn fixed_budget_under_covers_clustered_batches() {
        // Three clear clusters; the adaptive budget finds all three while a
        // fixed budget of 2 must leave one subgraph unrepresented, and a
        // fixed budget of 5 keeps redundant images.
        let mut g = SimilarityGraph::new(6);
        for &(i, j) in &[(0, 1), (2, 3), (4, 5)] {
            g.set_weight(i, j, 0.8);
        }
        let ssmm = Ssmm::default();
        let adaptive = ssmm.summarize(&g, 0.3);
        assert_eq!(adaptive.selected.len(), 3);

        let starved = ssmm.summarize_with_fixed_budget(&g, 0.3, 2);
        assert_eq!(starved.selected.len(), 2);
        assert!(starved.objective < adaptive.objective);

        let bloated = ssmm.summarize_with_fixed_budget(&g, 0.3, 5);
        assert_eq!(bloated.selected.len(), 5);
        // The two extra images are redundant: they add only their residual
        // coverage, no new subgraphs.
        let redundant: usize = 5 - 3;
        assert_eq!(
            bloated
                .partitions
                .iter()
                .filter(|p| p.iter().filter(|v| bloated.selected.contains(v)).count() > 1)
                .count(),
            redundant
        );
    }

    #[test]
    fn fixed_budget_clamps_to_ground_set() {
        let g = SimilarityGraph::new(3);
        let s = Ssmm::default().summarize_with_fixed_budget(&g, 0.5, 99);
        assert_eq!(s.selected.len(), 3);
    }
}
