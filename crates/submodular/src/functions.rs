//! Submodular objective functions: coverage, diversity, and weighted sums.

use crate::graph::SimilarityGraph;

/// A set function `F : 2^V → R` over ground set `{0, .., ground_size-1}`.
///
/// Implementations in this crate are monotone and submodular, which is what
/// gives the greedy algorithm its `(1 − 1/e)` guarantee; the property tests
/// check both properties on random instances.
///
/// `Sync` is a supertrait so the greedy maximizer can evaluate marginal
/// gains from several worker threads at once; objectives are read-only
/// during maximization, so this costs implementors nothing.
pub trait SubmodularFunction: Sync {
    /// Number of elements in the ground set `V`.
    fn ground_size(&self) -> usize;

    /// Evaluates `F(S)` for a subset given as a sorted-or-not slice of
    /// distinct indices.
    fn eval(&self, set: &[usize]) -> f64;

    /// Marginal gain `F(S ∪ {v}) − F(S)`. Default implementation evaluates
    /// both sides; implementors may specialize.
    fn marginal_gain(&self, set: &[usize], v: usize) -> f64 {
        let mut extended = set.to_vec();
        extended.push(v);
        self.eval(&extended) - self.eval(set)
    }
}

/// The paper's coverage term: `f_cov(S) = Σ_{i ∈ V} max_{j ∈ S} w(i, j)`.
///
/// Monotone and submodular (a sum of maxima of non-negative weights).
#[derive(Debug, Clone)]
pub struct CoverageFunction<'a> {
    graph: &'a SimilarityGraph,
}

impl<'a> CoverageFunction<'a> {
    /// Creates the coverage function over a batch graph.
    pub fn new(graph: &'a SimilarityGraph) -> Self {
        CoverageFunction { graph }
    }
}

impl SubmodularFunction for CoverageFunction<'_> {
    fn ground_size(&self) -> usize {
        self.graph.len()
    }

    fn eval(&self, set: &[usize]) -> f64 {
        if set.is_empty() {
            return 0.0;
        }
        (0..self.graph.len())
            .map(|i| {
                set.iter()
                    .map(|&j| self.graph.weight(i, j))
                    .fold(0.0f64, f64::max)
            })
            .sum()
    }
}

/// The paper's diversity term: `f_div(S) = Σ_i N(S, I_i)` where `I_i` are
/// the threshold-partition subgraphs and `N` is 1 when `S` intersects
/// `I_i`, else 0 — i.e. the number of subgraphs represented in `S`.
///
/// Monotone and submodular (a coverage function over the partition).
#[derive(Debug, Clone)]
pub struct DiversityFunction {
    /// `membership[v]` is the index of the subgraph containing `v`.
    membership: Vec<usize>,
    n_parts: usize,
}

impl DiversityFunction {
    /// Creates the diversity function from a partition (as produced by
    /// [`partition_by_threshold`](crate::partition_by_threshold)).
    ///
    /// # Panics
    ///
    /// Panics if the partition does not cover `0..n` exactly once.
    pub fn new(partition: &[Vec<usize>]) -> Self {
        let n: usize = partition.iter().map(|p| p.len()).sum();
        let mut membership = vec![usize::MAX; n];
        for (pi, part) in partition.iter().enumerate() {
            for &v in part {
                assert!(v < n, "partition member {v} out of range");
                assert_eq!(
                    membership[v],
                    usize::MAX,
                    "node {v} appears in two subgraphs"
                );
                membership[v] = pi;
            }
        }
        assert!(
            membership.iter().all(|&m| m != usize::MAX),
            "partition must cover all nodes"
        );
        DiversityFunction {
            membership,
            n_parts: partition.len(),
        }
    }

    /// Number of subgraphs in the partition.
    pub fn part_count(&self) -> usize {
        self.n_parts
    }
}

impl SubmodularFunction for DiversityFunction {
    fn ground_size(&self) -> usize {
        self.membership.len()
    }

    fn eval(&self, set: &[usize]) -> f64 {
        let mut seen = vec![false; self.n_parts];
        let mut count = 0usize;
        for &v in set {
            let p = self.membership[v];
            if !seen[p] {
                seen[p] = true;
                count += 1;
            }
        }
        count as f64
    }
}

/// A non-negative weighted sum `F(S) = Σ λ_i · f_i(S)` — submodular
/// whenever every term is (paper §III-B2).
pub struct WeightedObjective<'a> {
    terms: Vec<(f64, &'a dyn SubmodularFunction)>,
}

impl<'a> WeightedObjective<'a> {
    /// Creates a weighted sum.
    ///
    /// # Panics
    ///
    /// Panics if `terms` is empty, any weight is negative/non-finite, or
    /// the terms disagree on the ground-set size.
    pub fn new(terms: Vec<(f64, &'a dyn SubmodularFunction)>) -> Self {
        assert!(!terms.is_empty(), "objective needs at least one term");
        let n = terms[0].1.ground_size();
        for (lambda, f) in &terms {
            assert!(
                lambda.is_finite() && *lambda >= 0.0,
                "weights must be non-negative"
            );
            assert_eq!(f.ground_size(), n, "terms must share a ground set");
        }
        WeightedObjective { terms }
    }
}

impl SubmodularFunction for WeightedObjective<'_> {
    fn ground_size(&self) -> usize {
        self.terms[0].1.ground_size()
    }

    fn eval(&self, set: &[usize]) -> f64 {
        self.terms.iter().map(|(l, f)| l * f.eval(set)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::partition_by_threshold;

    fn sample_graph() -> SimilarityGraph {
        let mut g = SimilarityGraph::new(5);
        g.set_weight(0, 1, 0.9);
        g.set_weight(0, 2, 0.1);
        g.set_weight(2, 3, 0.6);
        g.set_weight(3, 4, 0.05);
        g
    }

    #[test]
    fn coverage_of_empty_set_is_zero() {
        let g = sample_graph();
        assert_eq!(CoverageFunction::new(&g).eval(&[]), 0.0);
    }

    #[test]
    fn coverage_of_full_set_is_n() {
        let g = sample_graph();
        let f = CoverageFunction::new(&g);
        let all: Vec<usize> = (0..5).collect();
        assert!((f.eval(&all) - 5.0).abs() < 1e-9); // every node covers itself at 1.0
    }

    #[test]
    fn coverage_values_match_hand_computation() {
        let g = sample_graph();
        let f = CoverageFunction::new(&g);
        // S = {0}: cover(0)=1, cover(1)=0.9, cover(2)=0.1, cover(3)=0, cover(4)=0.
        assert!((f.eval(&[0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_is_monotone() {
        let g = sample_graph();
        let f = CoverageFunction::new(&g);
        assert!(f.eval(&[0, 2]) >= f.eval(&[0]));
        assert!(f.eval(&[0, 2, 4]) >= f.eval(&[0, 2]));
    }

    #[test]
    fn coverage_is_submodular_on_sample() {
        let g = sample_graph();
        let f = CoverageFunction::new(&g);
        // Diminishing returns: gain of adding 3 to {0} >= gain of adding 3
        // to {0, 2}.
        let g_small = f.marginal_gain(&[0], 3);
        let g_large = f.marginal_gain(&[0, 2], 3);
        assert!(g_small >= g_large - 1e-12);
    }

    #[test]
    fn diversity_counts_touched_subgraphs() {
        let g = sample_graph();
        let parts = partition_by_threshold(&g, 0.5); // {0,1}, {2,3}, {4}
        assert_eq!(parts.len(), 3);
        let f = DiversityFunction::new(&parts);
        assert_eq!(f.eval(&[]), 0.0);
        assert_eq!(f.eval(&[0]), 1.0);
        assert_eq!(f.eval(&[0, 1]), 1.0); // same subgraph
        assert_eq!(f.eval(&[0, 2]), 2.0);
        assert_eq!(f.eval(&[0, 2, 4]), 3.0);
    }

    #[test]
    #[should_panic(expected = "two subgraphs")]
    fn overlapping_partition_rejected() {
        let _ = DiversityFunction::new(&[vec![0, 1], vec![1]]);
    }

    #[test]
    fn weighted_sum_combines_terms() {
        let g = sample_graph();
        let parts = partition_by_threshold(&g, 0.5);
        let cov = CoverageFunction::new(&g);
        let div = DiversityFunction::new(&parts);
        let obj = WeightedObjective::new(vec![(1.0, &cov as &dyn SubmodularFunction), (2.0, &div)]);
        let s = [0usize, 2];
        assert!((obj.eval(&s) - (cov.eval(&s) + 2.0 * div.eval(&s))).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let g = sample_graph();
        let cov = CoverageFunction::new(&g);
        let _ = WeightedObjective::new(vec![(-1.0, &cov as &dyn SubmodularFunction)]);
    }
}
