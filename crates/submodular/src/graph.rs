//! The weighted similarity graph over an image batch.

use serde::{Deserialize, Serialize};

/// A dense, symmetric, non-negative weight matrix over `n` nodes.
///
/// `weight(i, i)` is fixed at 1.0: an image is perfectly similar to itself,
/// which makes the coverage function behave (selecting an image always
/// covers it fully).
///
/// # Examples
///
/// ```
/// use bees_submodular::SimilarityGraph;
///
/// let mut g = SimilarityGraph::new(3);
/// g.set_weight(0, 2, 0.25);
/// assert_eq!(g.weight(2, 0), 0.25);
/// assert_eq!(g.weight(1, 1), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimilarityGraph {
    n: usize,
    // Upper-triangular (excluding diagonal) weights, row-major.
    weights: Vec<f64>,
}

impl SimilarityGraph {
    /// Creates a graph over `n` nodes with all off-diagonal weights zero.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "graph needs at least one node");
        SimilarityGraph {
            n,
            weights: vec![0.0; n * (n - 1) / 2],
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has zero nodes (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j);
        // Offset of row i in the packed upper triangle.
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// Weight between `i` and `j` (symmetric; 1.0 on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn weight(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "node index out of bounds");
        if i == j {
            return 1.0;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.weights[self.index(a, b)]
    }

    /// Sets the symmetric weight between two distinct nodes.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of bounds, equal, or the weight is not a
    /// finite value in `[0, 1]`.
    pub fn set_weight(&mut self, i: usize, j: usize, w: f64) {
        assert!(i < self.n && j < self.n, "node index out of bounds");
        assert!(i != j, "diagonal weights are fixed at 1.0");
        assert!(
            w.is_finite() && (0.0..=1.0).contains(&w),
            "weight must be in [0, 1], got {w}"
        );
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        let idx = self.index(a, b);
        self.weights[idx] = w;
    }

    /// Builds a graph by evaluating `f(i, j)` for every pair `i < j`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `f` returns an invalid weight.
    pub fn from_pairwise<F: FnMut(usize, usize) -> f64>(n: usize, mut f: F) -> Self {
        let mut g = SimilarityGraph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                g.set_weight(i, j, f(i, j));
            }
        }
        g
    }

    /// Builds a graph by evaluating `f(i, j)` for every pair `i < j`, with
    /// the rows of the upper triangle computed in parallel on the global
    /// runtime.
    ///
    /// Row `i` of the packed upper triangle is contiguous, so concatenating
    /// the per-row results in row order reproduces exactly the buffer
    /// [`SimilarityGraph::from_pairwise`] fills — the two constructors are
    /// bit-identical for any pure `f`, at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `f` returns a weight that is not a finite
    /// value in `[0, 1]`.
    pub fn from_pairwise_par<F: Fn(usize, usize) -> f64 + Sync>(n: usize, f: F) -> Self {
        assert!(n > 0, "graph needs at least one node");
        let rows = bees_runtime::par_map_range(n, |i| {
            ((i + 1)..n)
                .map(|j| {
                    let w = f(i, j);
                    assert!(
                        w.is_finite() && (0.0..=1.0).contains(&w),
                        "weight must be in [0, 1], got {w}"
                    );
                    w
                })
                .collect::<Vec<f64>>()
        });
        let mut weights = Vec::with_capacity(n * (n - 1) / 2);
        for row in rows {
            weights.extend(row);
        }
        SimilarityGraph { n, weights }
    }

    /// Iterates over `(i, j, w)` for all pairs `i < j` with `w > 0`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n).flat_map(move |i| {
            ((i + 1)..self.n).filter_map(move |j| {
                let w = self.weight(i, j);
                (w > 0.0).then_some((i, j, w))
            })
        })
    }
}

/// Cuts every edge with weight `< threshold` and returns the connected
/// components of what remains, each sorted ascending; components are
/// ordered by their smallest member.
///
/// The number of components is SSMM's budget `b`.
///
/// # Examples
///
/// ```
/// use bees_submodular::{partition_by_threshold, SimilarityGraph};
///
/// let mut g = SimilarityGraph::new(4);
/// g.set_weight(0, 1, 0.9);
/// g.set_weight(1, 2, 0.02);
/// let parts = partition_by_threshold(&g, 0.5);
/// assert_eq!(parts, vec![vec![0, 1], vec![2], vec![3]]);
/// ```
pub fn partition_by_threshold(graph: &SimilarityGraph, threshold: f64) -> Vec<Vec<usize>> {
    let n = graph.len();
    // Union-find over nodes.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        // Path compression.
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for (i, j, w) in graph.edges() {
        if w >= threshold {
            let ri = find(&mut parent, i);
            let rj = find(&mut parent, j);
            if ri != rj {
                parent[ri.max(rj)] = ri.min(rj);
            }
        }
    }
    let mut components: Vec<Vec<usize>> = Vec::new();
    let mut root_to_comp: Vec<Option<usize>> = vec![None; n];
    for node in 0..n {
        let root = find(&mut parent, node);
        match root_to_comp[root] {
            Some(c) => components[c].push(node),
            None => {
                root_to_comp[root] = Some(components.len());
                components.push(vec![node]);
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_symmetric() {
        let mut g = SimilarityGraph::new(5);
        g.set_weight(1, 3, 0.7);
        assert_eq!(g.weight(3, 1), 0.7);
        assert_eq!(g.weight(1, 3), 0.7);
        assert_eq!(g.weight(0, 4), 0.0);
    }

    #[test]
    fn diagonal_is_one() {
        let g = SimilarityGraph::new(3);
        for i in 0..3 {
            assert_eq!(g.weight(i, i), 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn setting_diagonal_panics() {
        SimilarityGraph::new(2).set_weight(1, 1, 0.5);
    }

    #[test]
    #[should_panic(expected = "weight must be in")]
    fn invalid_weight_panics() {
        SimilarityGraph::new(2).set_weight(0, 1, 1.5);
    }

    #[test]
    fn from_pairwise_fills_all_pairs() {
        let g = SimilarityGraph::from_pairwise(4, |i, j| (i + j) as f64 / 10.0);
        assert_eq!(g.weight(0, 1), 0.1);
        assert_eq!(g.weight(2, 3), 0.5);
    }

    #[test]
    fn parallel_pairwise_matches_sequential() {
        let f = |i: usize, j: usize| ((i * 13 + j * 7) % 11) as f64 / 11.0;
        for n in [1, 2, 3, 17, 64] {
            let seq = SimilarityGraph::from_pairwise(n, f);
            let par = SimilarityGraph::from_pairwise_par(n, f);
            assert_eq!(seq, par, "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "weight must be in")]
    fn parallel_pairwise_rejects_invalid_weight() {
        let _ = SimilarityGraph::from_pairwise_par(3, |_, _| 2.0);
    }

    #[test]
    fn edges_skip_zeros() {
        let mut g = SimilarityGraph::new(3);
        g.set_weight(0, 2, 0.4);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 2, 0.4)]);
    }

    #[test]
    fn partition_all_isolated_when_threshold_high() {
        let g = SimilarityGraph::from_pairwise(4, |_, _| 0.3);
        let parts = partition_by_threshold(&g, 0.5);
        assert_eq!(parts.len(), 4);
    }

    #[test]
    fn partition_single_component_when_threshold_low() {
        let g = SimilarityGraph::from_pairwise(4, |_, _| 0.3);
        let parts = partition_by_threshold(&g, 0.1);
        assert_eq!(parts, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn partition_transitive_chains() {
        // 0-1 and 1-2 strong, 0-2 weak: still one component via 1.
        let mut g = SimilarityGraph::new(4);
        g.set_weight(0, 1, 0.9);
        g.set_weight(1, 2, 0.9);
        let parts = partition_by_threshold(&g, 0.5);
        assert_eq!(parts, vec![vec![0, 1, 2], vec![3]]);
    }

    #[test]
    fn higher_threshold_never_fewer_components() {
        let g = SimilarityGraph::from_pairwise(6, |i, j| ((i * 7 + j * 3) % 10) as f64 / 10.0);
        let mut last = 0;
        for t in [0.0, 0.2, 0.4, 0.6, 0.8, 1.01] {
            let n = partition_by_threshold(&g, t).len();
            assert!(n >= last, "threshold {t}: {n} < {last}");
            last = n;
        }
        assert_eq!(last, 6);
    }
}
