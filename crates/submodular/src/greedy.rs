//! Greedy maximization under a cardinality budget.
//!
//! Algorithm 1 in the paper: repeatedly add the element with the largest
//! marginal gain until the budget is reached. For monotone submodular `F`
//! this is a `(1 − 1/e)`-approximation (Nemhauser et al.), which the tests
//! verify against brute force.

use crate::functions::SubmodularFunction;
use bees_runtime::Runtime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Naive greedy: scans all remaining elements each round. `O(b·n)` calls
/// to `marginal_gain`.
///
/// Ties break toward the smaller index, so the result is deterministic.
///
/// # Panics
///
/// Panics if `budget > f.ground_size()`.
pub fn greedy_maximize(f: &dyn SubmodularFunction, budget: usize) -> Vec<usize> {
    let n = f.ground_size();
    assert!(budget <= n, "budget {budget} exceeds ground set {n}");
    let mut selected: Vec<usize> = Vec::with_capacity(budget);
    let mut remaining: Vec<bool> = vec![true; n];
    let rt = Runtime::current();
    for _ in 0..budget {
        // Parallel argmax over the remaining elements. The fold keeps the
        // first index on exact ties (strictly-greater wins) and the combine
        // prefers the lower-chunk accumulator, so the pick is exactly the
        // one a sequential 0..n scan would make, at any thread count.
        let best: Option<(usize, f64)> = rt.par_map_reduce(
            n,
            |v| {
                if remaining[v] {
                    Some((v, f.marginal_gain(&selected, v)))
                } else {
                    None
                }
            },
            None,
            |acc, item| match item {
                None => acc,
                Some((v, gain)) => match acc {
                    Some((_, bg)) if gain <= bg => acc,
                    _ => Some((v, gain)),
                },
            },
            |a, b| match (a, b) {
                (Some((_, ag)), Some((bi, bg))) if bg > ag => Some((bi, bg)),
                (None, b) => b,
                (a, _) => a,
            },
        );
        match best {
            Some((v, _)) => {
                remaining[v] = false;
                selected.push(v);
            }
            None => break,
        }
    }
    selected
}

/// A candidate in the lazy-greedy priority queue.
#[derive(Debug)]
struct LazyEntry {
    gain: f64,
    element: usize,
    /// Round at which `gain` was computed; stale entries are re-evaluated.
    round: usize,
}

impl PartialEq for LazyEntry {
    fn eq(&self, other: &Self) -> bool {
        self.gain == other.gain && self.element == other.element
    }
}
impl Eq for LazyEntry {}
impl PartialOrd for LazyEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for LazyEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on gain; tie-break toward the smaller element index so
        // lazy and naive greedy agree exactly.
        self.gain
            .partial_cmp(&other.gain)
            .expect("gains are finite")
            .then(other.element.cmp(&self.element))
    }
}

/// Lazy greedy (Minoux's accelerated greedy): marginal gains can only
/// shrink as the selection grows, so a stale heap entry whose gain still
/// tops the heap after re-evaluation is the true maximizer.
///
/// Produces a selection with the same objective value as
/// [`greedy_maximize`] for submodular `F` (the sets themselves can differ
/// when two elements have exactly tied marginal gains), with far fewer
/// evaluations on large ground sets.
///
/// # Panics
///
/// Panics if `budget > f.ground_size()`.
pub fn lazy_greedy_maximize(f: &dyn SubmodularFunction, budget: usize) -> Vec<usize> {
    let n = f.ground_size();
    assert!(budget <= n, "budget {budget} exceeds ground set {n}");
    let mut selected: Vec<usize> = Vec::with_capacity(budget);
    // Seed the heap with all first-round gains, computed in parallel (the
    // heap's ordering does not depend on insertion order, so this is safe).
    let gains = Runtime::current().par_map_range(n, |v| f.marginal_gain(&[], v));
    let mut heap: BinaryHeap<LazyEntry> = gains
        .into_iter()
        .enumerate()
        .map(|(v, gain)| LazyEntry {
            gain,
            element: v,
            round: 0,
        })
        .collect();
    let mut round = 0usize;
    while selected.len() < budget {
        let Some(top) = heap.pop() else { break };
        if top.round == round {
            selected.push(top.element);
            round += 1;
        } else {
            let gain = f.marginal_gain(&selected, top.element);
            heap.push(LazyEntry {
                gain,
                element: top.element,
                round,
            });
        }
    }
    selected
}

/// Exhaustive search over all subsets of size `<= budget`. Exponential —
/// only for tests and the approximation-ratio bench.
///
/// # Panics
///
/// Panics if the ground set exceeds 20 elements (guard against accidental
/// blowup).
pub fn brute_force_maximize(f: &dyn SubmodularFunction, budget: usize) -> (Vec<usize>, f64) {
    let n = f.ground_size();
    assert!(n <= 20, "brute force is limited to 20 elements, got {n}");
    let mut best_set = Vec::new();
    let mut best_val = f.eval(&[]);
    for mask in 0u32..(1u32 << n) {
        if (mask.count_ones() as usize) > budget {
            continue;
        }
        let set: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
        let val = f.eval(&set);
        if val > best_val {
            best_val = val;
            best_set = set;
        }
    }
    (best_set, best_val)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::CoverageFunction;
    use crate::graph::SimilarityGraph;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_graph(n: usize, seed: u64) -> SimilarityGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        SimilarityGraph::from_pairwise(n, |_, _| {
            if rng.gen_bool(0.4) {
                rng.gen_range(0.0..1.0)
            } else {
                0.0
            }
        })
    }

    #[test]
    fn greedy_selects_distinct_elements() {
        let g = random_graph(10, 1);
        let f = CoverageFunction::new(&g);
        let sel = greedy_maximize(&f, 5);
        assert_eq!(sel.len(), 5);
        let mut sorted = sel.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }

    #[test]
    fn lazy_and_naive_greedy_reach_the_same_value() {
        for seed in 0..5u64 {
            let g = random_graph(12, seed);
            let f = CoverageFunction::new(&g);
            for budget in [1, 3, 6, 12] {
                let naive = greedy_maximize(&f, budget);
                let lazy = lazy_greedy_maximize(&f, budget);
                assert_eq!(naive.len(), lazy.len(), "seed {seed} budget {budget}");
                // Exact set agreement is not guaranteed on exactly tied
                // gains (floating-point ulp effects), but the objective
                // value must match.
                assert!(
                    (f.eval(&naive) - f.eval(&lazy)).abs() < 1e-9,
                    "seed {seed} budget {budget}: {naive:?} vs {lazy:?}"
                );
            }
        }
    }

    #[test]
    fn greedy_meets_approximation_bound() {
        // F(greedy) >= (1 - 1/e) F(opt) for monotone submodular F.
        let bound = 1.0 - 1.0 / std::f64::consts::E;
        for seed in 0..6u64 {
            let g = random_graph(9, seed + 100);
            let f = CoverageFunction::new(&g);
            for budget in [1usize, 2, 4] {
                let greedy_val = f.eval(&greedy_maximize(&f, budget));
                let (_, opt_val) = brute_force_maximize(&f, budget);
                assert!(
                    greedy_val >= bound * opt_val - 1e-9,
                    "seed {seed} budget {budget}: {greedy_val} < {bound} * {opt_val}"
                );
            }
        }
    }

    #[test]
    fn zero_budget_selects_nothing() {
        let g = random_graph(5, 3);
        let f = CoverageFunction::new(&g);
        assert!(greedy_maximize(&f, 0).is_empty());
        assert!(lazy_greedy_maximize(&f, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn budget_above_ground_size_panics() {
        let g = random_graph(3, 4);
        let f = CoverageFunction::new(&g);
        let _ = greedy_maximize(&f, 4);
    }

    #[test]
    fn first_pick_maximizes_singleton_value() {
        let g = random_graph(8, 9);
        let f = CoverageFunction::new(&g);
        let sel = greedy_maximize(&f, 1);
        let best: f64 = (0..8).map(|v| f.eval(&[v])).fold(f64::MIN, f64::max);
        assert!((f.eval(&sel) - best).abs() < 1e-12);
    }
}
