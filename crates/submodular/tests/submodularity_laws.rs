//! Property-based verification of the mathematical claims SSMM rests on:
//! the coverage and diversity functions (and their weighted sums) are
//! monotone and submodular, which is what entitles the greedy algorithm to
//! its (1 − 1/e) guarantee.

use bees_submodular::{
    partition_by_threshold, CoverageFunction, DiversityFunction, SimilarityGraph,
    SubmodularFunction, WeightedObjective,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn arb_graph() -> impl Strategy<Value = SimilarityGraph> {
    (2usize..10, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        SimilarityGraph::from_pairwise(n, |_, _| {
            if rng.gen_bool(0.5) {
                rng.gen_range(0.0..1.0)
            } else {
                0.0
            }
        })
    })
}

/// Draws nested sets `A ⊆ B ⊂ V` and an element `v ∉ B`.
fn nested_sets(n: usize, seed: u64) -> (Vec<usize>, Vec<usize>, usize) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let v = rng.gen_range(0..n);
    let mut b: Vec<usize> = (0..n).filter(|&x| x != v && rng.gen_bool(0.5)).collect();
    let a: Vec<usize> = b.iter().copied().filter(|_| rng.gen_bool(0.6)).collect();
    b.sort_unstable();
    (a, b, v)
}

fn check_laws(f: &dyn SubmodularFunction, seed: u64) -> Result<(), TestCaseError> {
    let n = f.ground_size();
    let (a, b, v) = nested_sets(n, seed);
    // Monotone: F(A) <= F(B).
    prop_assert!(f.eval(&a) <= f.eval(&b) + 1e-9, "monotonicity violated");
    // Submodular: gain(A, v) >= gain(B, v).
    let gain_a = f.marginal_gain(&a, v);
    let gain_b = f.marginal_gain(&b, v);
    prop_assert!(
        gain_a >= gain_b - 1e-9,
        "diminishing returns violated: gain(A) {gain_a} < gain(B) {gain_b}"
    );
    // Normalized-ish: F(∅) is the floor.
    prop_assert!(f.eval(&[]) <= f.eval(&a) + 1e-9);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coverage_function_is_monotone_submodular(g in arb_graph(), seed in any::<u64>()) {
        let f = CoverageFunction::new(&g);
        check_laws(&f, seed)?;
    }

    #[test]
    fn diversity_function_is_monotone_submodular(g in arb_graph(), t in 0.0f64..1.0, seed in any::<u64>()) {
        let parts = partition_by_threshold(&g, t);
        let f = DiversityFunction::new(&parts);
        check_laws(&f, seed)?;
    }

    #[test]
    fn weighted_sum_is_monotone_submodular(
        g in arb_graph(),
        t in 0.0f64..1.0,
        l1 in 0.0f64..3.0,
        l2 in 0.0f64..3.0,
        seed in any::<u64>(),
    ) {
        let parts = partition_by_threshold(&g, t);
        let cov = CoverageFunction::new(&g);
        let div = DiversityFunction::new(&parts);
        let f = WeightedObjective::new(vec![
            (l1, &cov as &dyn SubmodularFunction),
            (l2, &div),
        ]);
        check_laws(&f, seed)?;
    }

    #[test]
    fn coverage_of_full_set_is_ground_size(g in arb_graph()) {
        // Every node covers itself at weight 1.
        let f = CoverageFunction::new(&g);
        let all: Vec<usize> = (0..g.len()).collect();
        prop_assert!((f.eval(&all) - g.len() as f64).abs() < 1e-9);
    }

    #[test]
    fn diversity_of_full_set_is_partition_count(g in arb_graph(), t in 0.0f64..1.0) {
        let parts = partition_by_threshold(&g, t);
        let f = DiversityFunction::new(&parts);
        let all: Vec<usize> = (0..g.len()).collect();
        prop_assert_eq!(f.eval(&all) as usize, parts.len());
    }
}
