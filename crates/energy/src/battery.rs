//! The simulated smartphone battery.

use serde::{Deserialize, Serialize};

/// A battery with a fixed capacity in joules.
///
/// `Ebat` — the remaining-energy fraction every EAAS scheme consumes — is
/// [`Battery::fraction`]. Draining saturates at zero; the battery never goes
/// negative.
///
/// # Examples
///
/// ```
/// use bees_energy::Battery;
///
/// // The paper's handset: 3150 mAh at 3.8 V ≈ 43.1 kJ.
/// let mut b = Battery::from_mah(3150.0, 3.8);
/// assert!((b.capacity_joules() - 43_092.0).abs() < 1.0);
/// b.drain(b.capacity_joules() / 2.0);
/// assert!((b.fraction() - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity_j: f64,
    remaining_j: f64,
}

impl Battery {
    /// Creates a full battery with the given capacity in joules.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_j` is not finite and positive.
    pub fn from_joules(capacity_j: f64) -> Self {
        assert!(
            capacity_j.is_finite() && capacity_j > 0.0,
            "battery capacity must be positive, got {capacity_j}"
        );
        Battery {
            capacity_j,
            remaining_j: capacity_j,
        }
    }

    /// Creates a full battery from a milliamp-hour rating and voltage
    /// (`J = mAh · 3.6 · V`).
    ///
    /// # Panics
    ///
    /// Panics if either argument is not finite and positive.
    pub fn from_mah(mah: f64, volts: f64) -> Self {
        assert!(mah.is_finite() && mah > 0.0, "mAh must be positive");
        assert!(volts.is_finite() && volts > 0.0, "voltage must be positive");
        Battery::from_joules(mah * 3.6 * volts)
    }

    /// Full capacity in joules.
    #[inline]
    pub fn capacity_joules(&self) -> f64 {
        self.capacity_j
    }

    /// Remaining charge in joules.
    #[inline]
    pub fn remaining_joules(&self) -> f64 {
        self.remaining_j
    }

    /// Remaining fraction in `[0, 1]` — the paper's `Ebat`.
    #[inline]
    pub fn fraction(&self) -> f64 {
        self.remaining_j / self.capacity_j
    }

    /// Joules drained since the battery was full — the denominator of the
    /// contention bench's coverage-per-joule metric.
    #[inline]
    pub fn drawn_joules(&self) -> f64 {
        self.capacity_j - self.remaining_j
    }

    /// Whether the battery is exhausted.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.remaining_j <= 0.0
    }

    /// Drains `joules`, saturating at empty. Returns the amount actually
    /// drained (less than `joules` only when the battery ran out).
    ///
    /// # Panics
    ///
    /// Panics if `joules` is negative or not finite.
    pub fn drain(&mut self, joules: f64) -> f64 {
        assert!(
            joules.is_finite() && joules >= 0.0,
            "drain amount must be non-negative"
        );
        let drained = joules.min(self.remaining_j);
        self.remaining_j -= drained;
        drained
    }

    /// Sets the remaining fraction directly (used to stage experiments at a
    /// given `Ebat`).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= fraction <= 1.0`.
    pub fn set_fraction(&mut self, fraction: f64) {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1], got {fraction}"
        );
        self.remaining_j = self.capacity_j * fraction;
    }

    /// Restores the battery to full.
    pub fn recharge(&mut self) {
        self.remaining_j = self.capacity_j;
    }
}

impl Default for Battery {
    /// The paper's handset battery: 3150 mAh at 3.8 V.
    fn default() -> Self {
        Battery::from_mah(3150.0, 3.8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_conversion_matches_paper_handset() {
        let b = Battery::default();
        assert!((b.capacity_joules() - 3150.0 * 3.6 * 3.8).abs() < 1e-9);
    }

    #[test]
    fn drain_saturates_at_zero() {
        let mut b = Battery::from_joules(10.0);
        assert_eq!(b.drain(4.0), 4.0);
        assert_eq!(b.drain(100.0), 6.0);
        assert!(b.is_empty());
        assert_eq!(b.fraction(), 0.0);
        assert_eq!(b.drain(1.0), 0.0);
    }

    #[test]
    fn drawn_joules_mirrors_the_drain() {
        let mut b = Battery::from_joules(10.0);
        assert_eq!(b.drawn_joules(), 0.0);
        b.drain(4.0);
        assert!((b.drawn_joules() - 4.0).abs() < 1e-12);
        b.drain(100.0);
        assert!((b.drawn_joules() - 10.0).abs() < 1e-12);
        b.recharge();
        assert_eq!(b.drawn_joules(), 0.0);
    }

    #[test]
    fn set_fraction_and_recharge() {
        let mut b = Battery::from_joules(100.0);
        b.set_fraction(0.3);
        assert!((b.remaining_joules() - 30.0).abs() < 1e-9);
        b.recharge();
        assert_eq!(b.fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn set_fraction_rejects_out_of_range() {
        Battery::from_joules(1.0).set_fraction(1.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = Battery::from_joules(0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_drain_rejected() {
        Battery::from_joules(1.0).drain(-0.1);
    }
}
