//! The energy cost model: joules per unit of simulated work.
//!
//! Coefficients are calibrated to published smartphone measurements rather
//! than to the paper's absolute numbers (which depend on its specific
//! handset): ORB on a ~1 MPix image costs a few tenths of a joule, SIFT
//! roughly two orders of magnitude more (the paper's stated ratio), WiFi
//! transmission draws well under a watt, and a bright screen about one watt.
//! What the experiments depend on is the *relative ordering* these
//! coefficients preserve.

use bees_features::{ExtractionStats, ExtractorKind};
use serde::{Deserialize, Serialize};

/// Cost coefficients mapping work to joules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Joules per pixel of ORB detection work (pyramid + FAST + Harris).
    pub orb_joules_per_pixel: f64,
    /// Joules per keypoint for the BRIEF descriptor.
    pub orb_joules_per_keypoint: f64,
    /// Joules per scale-space pixel of SIFT work (DoG + extrema).
    pub sift_joules_per_pixel: f64,
    /// Joules per keypoint for the 128-d SIFT descriptor.
    pub sift_joules_per_keypoint: f64,
    /// Joules per scale-space pixel for PCA-SIFT (same detector as SIFT).
    pub pca_sift_joules_per_pixel: f64,
    /// Joules per keypoint for the PCA projection (patch + 162→36 matmul);
    /// more than SIFT's descriptor, reflecting "PCA-SIFT ... increasing the
    /// time of computing features".
    pub pca_sift_joules_per_keypoint: f64,
    /// Joules per pixel of global-feature (color histogram) computation —
    /// the cheap extraction PhotoNet-style schemes use.
    pub histogram_joules_per_pixel: f64,
    /// Joules per pixel of bitmap resize work.
    pub resize_joules_per_pixel: f64,
    /// Joules per pixel of DCT encode work.
    pub encode_joules_per_pixel: f64,
    /// Joules per descriptor pair compared during in-batch matching.
    pub matching_joules_per_pair: f64,
    /// Sustained CPU power while computing, in watts — converts CPU joules
    /// into CPU seconds for the delay model (Fig. 11 includes extraction
    /// time in the upload delay).
    pub cpu_watts: f64,
    /// Radio power while transmitting, in watts.
    pub radio_tx_watts: f64,
    /// Radio power while receiving, in watts.
    pub radio_rx_watts: f64,
    /// Baseline power (screen bright + system) in watts, drawn for the
    /// whole wall-clock duration of a session.
    pub idle_watts: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            // ~0.3 J for a 1 MPix image with a ~1.9 MPix pyramid.
            orb_joules_per_pixel: 1.5e-7,
            orb_joules_per_keypoint: 6.0e-5,
            // Roughly two orders of magnitude above ORB per unit work
            // (paper §III-D: "ORB is about two orders faster than SIFT").
            sift_joules_per_pixel: 6.0e-6,
            sift_joules_per_keypoint: 2.0e-3,
            pca_sift_joules_per_pixel: 6.0e-6,
            pca_sift_joules_per_keypoint: 3.2e-3,
            histogram_joules_per_pixel: 8.0e-9,
            resize_joules_per_pixel: 2.0e-8,
            encode_joules_per_pixel: 6.0e-8,
            matching_joules_per_pair: 2.0e-8,
            cpu_watts: 2.0,
            radio_tx_watts: 0.8,
            radio_rx_watts: 0.5,
            idle_watts: 1.0,
        }
    }
}

impl EnergyModel {
    /// Energy to extract features given the extractor kind and the work it
    /// reported.
    pub fn extraction_energy(&self, kind: ExtractorKind, stats: &ExtractionStats) -> f64 {
        let (per_pixel, per_keypoint) = match kind {
            ExtractorKind::Orb => (self.orb_joules_per_pixel, self.orb_joules_per_keypoint),
            ExtractorKind::Sift => (self.sift_joules_per_pixel, self.sift_joules_per_keypoint),
            ExtractorKind::PcaSift => (
                self.pca_sift_joules_per_pixel,
                self.pca_sift_joules_per_keypoint,
            ),
        };
        stats.pixels_processed as f64 * per_pixel + stats.keypoints_described as f64 * per_keypoint
    }

    /// Energy to compute a color histogram over `pixels` pixels.
    pub fn histogram_energy(&self, pixels: usize) -> f64 {
        pixels as f64 * self.histogram_joules_per_pixel
    }

    /// Energy to resize `pixels` source pixels.
    pub fn resize_energy(&self, pixels: usize) -> f64 {
        pixels as f64 * self.resize_joules_per_pixel
    }

    /// Energy to DCT-encode `pixels` pixels.
    pub fn encode_energy(&self, pixels: usize) -> f64 {
        pixels as f64 * self.encode_joules_per_pixel
    }

    /// Energy to brute-force match two descriptor sets of the given sizes
    /// (cross-check costs both directions; the constant absorbs the 2×).
    pub fn matching_energy(&self, n_query: usize, n_train: usize) -> f64 {
        (n_query * n_train) as f64 * self.matching_joules_per_pair
    }

    /// CPU seconds corresponding to `joules` of computation — the delay
    /// contribution of on-phone work.
    pub fn cpu_seconds(&self, joules: f64) -> f64 {
        joules / self.cpu_watts
    }

    /// Radio energy for `seconds` of transmission.
    pub fn radio_tx_energy(&self, seconds: f64) -> f64 {
        seconds * self.radio_tx_watts
    }

    /// Radio energy for `seconds` of reception.
    pub fn radio_rx_energy(&self, seconds: f64) -> f64 {
        seconds * self.radio_rx_watts
    }

    /// Baseline (screen/system) energy over `seconds` of wall-clock time.
    pub fn idle_energy(&self, seconds: f64) -> f64 {
        seconds * self.idle_watts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mpix_stats() -> ExtractionStats {
        ExtractionStats {
            pixels_processed: 1_900_000, // ~1 MPix image pyramid
            keypoints_described: 500,
            descriptor_bytes: 16_000,
        }
    }

    #[test]
    fn sift_costs_orders_more_than_orb() {
        let m = EnergyModel::default();
        let orb = m.extraction_energy(ExtractorKind::Orb, &mpix_stats());
        let sift = m.extraction_energy(ExtractorKind::Sift, &mpix_stats());
        assert!(sift / orb > 20.0, "sift {sift} orb {orb}");
        assert!(orb > 0.0);
    }

    #[test]
    fn pca_sift_costs_more_than_sift() {
        let m = EnergyModel::default();
        let sift = m.extraction_energy(ExtractorKind::Sift, &mpix_stats());
        let pca = m.extraction_energy(ExtractorKind::PcaSift, &mpix_stats());
        assert!(pca > sift);
    }

    #[test]
    fn orb_on_megapixel_image_is_subjoule() {
        let m = EnergyModel::default();
        let e = m.extraction_energy(ExtractorKind::Orb, &mpix_stats());
        assert!(e > 0.05 && e < 1.0, "got {e}");
    }

    #[test]
    fn radio_energy_is_power_times_time() {
        let m = EnergyModel::default();
        assert!((m.radio_tx_energy(10.0) - 8.0).abs() < 1e-9);
        assert!((m.radio_rx_energy(10.0) - 5.0).abs() < 1e-9);
        assert!((m.idle_energy(60.0) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_seconds_inverts_power() {
        let m = EnergyModel::default();
        assert!((m.cpu_seconds(4.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn matching_energy_scales_with_pairs() {
        let m = EnergyModel::default();
        assert_eq!(m.matching_energy(0, 100), 0.0);
        assert!(
            (m.matching_energy(500, 500) - 250_000.0 * m.matching_joules_per_pair).abs() < 1e-12
        );
    }

    #[test]
    fn resize_is_cheaper_than_extraction_per_pixel() {
        let m = EnergyModel::default();
        assert!(m.resize_joules_per_pixel < m.orb_joules_per_pixel);
        assert!(m.encode_joules_per_pixel < m.orb_joules_per_pixel);
        // Global features are the cheapest extraction of all (the paper's
        // related work uses them for exactly that reason).
        assert!(m.histogram_joules_per_pixel < m.orb_joules_per_pixel);
    }
}
