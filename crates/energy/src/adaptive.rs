//! Energy-aware adaptive schemes (EAAS).
//!
//! The paper's central knob: each approximate stage reads the remaining
//! battery fraction `Ebat` and sets its quality/efficiency trade-off through
//! a clamped linear function —
//!
//! * **EAC** (energy-aware adaptive compression, §III-A): bitmap
//!   compression proportion `C = 0.4 − 0.4·Ebat`, keeping the precision loss
//!   under ~10 %,
//! * **EDR** (energy-defined redundancy, §III-B1): similarity threshold
//!   `T = T0 + k·Ebat` (paper constants `T0 = 0.013`, `k = 0.006`); lower
//!   battery → lower threshold → more images declared redundant,
//! * **EAU** (energy-aware adaptive uploading, §III-C): resolution
//!   compression proportion `Cr = 0.8 − 0.8·Ebat`,
//! * **SSMM** reuses the EDR form for its graph-partition threshold `Tw`.

use serde::{Deserialize, Serialize};

/// A scheme mapping the remaining battery fraction to a control value.
///
/// Implementors must be pure functions of `ebat` so experiments are
/// reproducible.
pub trait AdaptiveScheme {
    /// Control value for a battery fraction `ebat ∈ [0, 1]`.
    fn value(&self, ebat: f64) -> f64;
}

/// A clamped linear adaptive scheme: `clamp(intercept + slope·ebat)`.
///
/// # Examples
///
/// ```
/// use bees_energy::{AdaptiveScheme, LinearScheme};
///
/// let eac = LinearScheme::eac();
/// assert!((eac.value(1.0) - 0.0).abs() < 1e-9);   // full battery: no compression
/// assert!((eac.value(0.05) - 0.38).abs() < 1e-9); // paper's Ebat = 5% example
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearScheme {
    /// Value at `ebat = 0`.
    pub intercept: f64,
    /// Change per unit of `ebat`.
    pub slope: f64,
    /// Lower clamp.
    pub min: f64,
    /// Upper clamp.
    pub max: f64,
}

impl LinearScheme {
    /// Creates a clamped linear scheme.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or any parameter is not finite.
    pub fn new(intercept: f64, slope: f64, min: f64, max: f64) -> Self {
        assert!(
            intercept.is_finite() && slope.is_finite() && min.is_finite() && max.is_finite(),
            "scheme parameters must be finite"
        );
        assert!(min <= max, "min must not exceed max");
        LinearScheme {
            intercept,
            slope,
            min,
            max,
        }
    }

    /// A constant scheme (ignores `ebat`) — what BEES-EA effectively runs.
    pub fn constant(value: f64) -> Self {
        LinearScheme::new(value, 0.0, value, value)
    }

    /// EAC: bitmap compression proportion `C = 0.4 − 0.4·Ebat` (§III-A).
    pub fn eac() -> Self {
        LinearScheme::new(0.4, -0.4, 0.0, 0.9)
    }

    /// EDR: similarity threshold `T = t0 + k·Ebat` (§III-B1). The paper's
    /// constants for its OpenCV-ORB score distribution are
    /// `t0 = 0.013, k = 0.006`; ours are re-derived from our measured
    /// distribution the same way (see `fig4_distribution`).
    pub fn edr(t0: f64, k: f64) -> Self {
        LinearScheme::new(t0, k, 0.0, 1.0)
    }

    /// EAU: resolution compression proportion `Cr = 0.8 − 0.8·Ebat`
    /// (§III-C).
    pub fn eau() -> Self {
        LinearScheme::new(0.8, -0.8, 0.0, 0.9)
    }
}

impl AdaptiveScheme for LinearScheme {
    fn value(&self, ebat: f64) -> f64 {
        let e = ebat.clamp(0.0, 1.0);
        (self.intercept + self.slope * e).clamp(self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eac_matches_paper_examples() {
        let eac = LinearScheme::eac();
        // Full battery: no bitmap compression.
        assert!((eac.value(1.0)).abs() < 1e-9);
        // Ebat = 5%: C = 0.38 (paper §III-A example).
        assert!((eac.value(0.05) - 0.38).abs() < 1e-9);
        // Empty battery: C = 0.4 — never beyond the 10%-error boundary.
        assert!((eac.value(0.0) - 0.4).abs() < 1e-9);
    }

    #[test]
    fn eau_matches_paper_example() {
        let eau = LinearScheme::eau();
        // Ebat = 5%: Cr = 0.76 (paper §III-C example).
        assert!((eau.value(0.05) - 0.76).abs() < 1e-9);
        assert!(eau.value(1.0).abs() < 1e-9);
    }

    #[test]
    fn edr_rises_with_battery() {
        let edr = LinearScheme::edr(0.013, 0.006);
        assert!((edr.value(1.0) - 0.019).abs() < 1e-9);
        assert!((edr.value(0.0) - 0.013).abs() < 1e-9);
        assert!(edr.value(0.5) > edr.value(0.1));
    }

    #[test]
    fn values_are_clamped() {
        let s = LinearScheme::new(0.0, 2.0, 0.1, 0.9);
        assert_eq!(s.value(0.0), 0.1);
        assert_eq!(s.value(1.0), 0.9);
        // Out-of-range ebat clamps too.
        assert_eq!(s.value(5.0), 0.9);
        assert_eq!(s.value(-1.0), 0.1);
    }

    #[test]
    fn constant_scheme_ignores_ebat() {
        let s = LinearScheme::constant(0.42);
        assert_eq!(s.value(0.0), 0.42);
        assert_eq!(s.value(1.0), 0.42);
    }

    #[test]
    #[should_panic(expected = "min must not exceed max")]
    fn inverted_clamps_rejected() {
        let _ = LinearScheme::new(0.0, 1.0, 1.0, 0.0);
    }
}
