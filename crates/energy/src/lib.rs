#![warn(missing_docs)]

//! Battery and energy-cost modeling for the BEES reproduction.
//!
//! The paper's prototype measures joules on a real smartphone (3150 mAh at
//! 3.8 V). This crate replaces the physical battery with an explicit model
//! so every joule is an auditable function of work performed:
//!
//! * [`Battery`] — capacity bookkeeping; `Ebat` (the remaining-energy
//!   fraction that drives every energy-aware adaptive scheme) is
//!   [`Battery::fraction`],
//! * [`EnergyModel`] — cost coefficients: CPU joules per pixel of feature
//!   detection (per extractor), per keypoint described, per pixel resized /
//!   DCT-encoded, and radio power during transmission,
//! * [`EnergyLedger`] — per-category accounting backing the paper's Fig. 8
//!   breakdown (feature extraction vs feature upload vs image upload),
//! * [`adaptive`] — the three energy-aware adaptive schemes: EAC
//!   (`C = 0.4 − 0.4·Ebat`), EDR (`T = T0 + k·Ebat`), and EAU
//!   (`Cr = 0.8 − 0.8·Ebat`).
//!
//! # Examples
//!
//! ```
//! use bees_energy::{Battery, EnergyModel};
//!
//! let mut battery = Battery::from_mah(3150.0, 3.8);
//! assert!((battery.fraction() - 1.0).abs() < 1e-9);
//! let model = EnergyModel::default();
//! let j = model.radio_tx_energy(10.0); // 10 s of transmission
//! battery.drain(j);
//! assert!(battery.fraction() < 1.0);
//! ```

pub mod adaptive;
mod battery;
mod ledger;
mod model;

pub use adaptive::{AdaptiveScheme, LinearScheme};
pub use battery::Battery;
pub use ledger::{EnergyCategory, EnergyLedger};
pub use model::EnergyModel;
