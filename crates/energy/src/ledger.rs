//! Per-category energy accounting.
//!
//! The paper's Fig. 8 breaks BEES' consumption into feature extraction,
//! feature upload, and image upload; the ledger keeps those buckets (plus
//! compression, wasted retry energy, and idle) for every scheme.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Where a joule went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnergyCategory {
    /// Computing image features.
    FeatureExtraction,
    /// Transmitting feature payloads to the server.
    FeatureUpload,
    /// Transmitting image payloads to the server.
    ImageUpload,
    /// Receiving server responses (query results, thumbnail feedback).
    Download,
    /// Bitmap/resolution resizing and DCT encoding.
    Compression,
    /// Radio energy spent on transfer attempts whose bytes were never
    /// confirmed: mid-flight cuts, blackouts, timeouts, torn chunks.
    Wasted,
    /// Baseline screen/system drain.
    Idle,
    /// Radio energy that bought confirmed chunks of a transfer that never
    /// completed, later redeemed by decoding the banked prefix into a
    /// usable partial image. Not wasted — it delivered fidelity.
    Salvaged,
    /// Transmitting a deferred image the server pulled down on demand: a
    /// responder's retrieval query matched an on-device catalog entry and
    /// the device was asked (and granted airtime) to deliver it.
    PullDown,
}

impl EnergyCategory {
    /// All categories, in reporting order. Later additions (`Salvaged`,
    /// then `PullDown`) are appended last so ledgers serialized before they
    /// existed keep their bucket order.
    pub const ALL: [EnergyCategory; 9] = [
        EnergyCategory::FeatureExtraction,
        EnergyCategory::FeatureUpload,
        EnergyCategory::ImageUpload,
        EnergyCategory::Download,
        EnergyCategory::Compression,
        EnergyCategory::Wasted,
        EnergyCategory::Idle,
        EnergyCategory::Salvaged,
        EnergyCategory::PullDown,
    ];
}

impl fmt::Display for EnergyCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            EnergyCategory::FeatureExtraction => "feature-extraction",
            EnergyCategory::FeatureUpload => "feature-upload",
            EnergyCategory::ImageUpload => "image-upload",
            EnergyCategory::Download => "download",
            EnergyCategory::Compression => "compression",
            EnergyCategory::Wasted => "wasted",
            EnergyCategory::Idle => "idle",
            EnergyCategory::Salvaged => "salvaged",
            EnergyCategory::PullDown => "pull-down",
        };
        f.write_str(name)
    }
}

/// Accumulates joules per [`EnergyCategory`].
///
/// # Examples
///
/// ```
/// use bees_energy::{EnergyCategory, EnergyLedger};
///
/// let mut ledger = EnergyLedger::new();
/// ledger.record(EnergyCategory::ImageUpload, 2.5);
/// ledger.record(EnergyCategory::ImageUpload, 1.5);
/// assert_eq!(ledger.get(EnergyCategory::ImageUpload), 4.0);
/// assert_eq!(ledger.total(), 4.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(from = "LedgerRepr", into = "LedgerRepr")]
pub struct EnergyLedger {
    entries: [(f64, u64); 9], // (joules, event count) indexed by category
}

/// Serialized form of [`EnergyLedger`]: a variable-length bucket list, so
/// ledgers written before `Salvaged`/`PullDown` existed (7 or 8 buckets)
/// still deserialize — missing trailing buckets read as empty, extras are
/// dropped.
#[derive(Serialize, Deserialize)]
struct LedgerRepr {
    entries: Vec<(f64, u64)>,
}

impl From<LedgerRepr> for EnergyLedger {
    fn from(repr: LedgerRepr) -> Self {
        let mut entries = [(0.0, 0u64); 9];
        for (slot, got) in entries.iter_mut().zip(repr.entries) {
            *slot = got;
        }
        EnergyLedger { entries }
    }
}

impl From<EnergyLedger> for LedgerRepr {
    fn from(ledger: EnergyLedger) -> Self {
        LedgerRepr {
            entries: ledger.entries.to_vec(),
        }
    }
}

fn index_of(cat: EnergyCategory) -> usize {
    EnergyCategory::ALL
        .iter()
        .position(|&c| c == cat)
        .expect("category is in ALL")
}

impl EnergyLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `joules` against a category.
    ///
    /// # Panics
    ///
    /// Panics if `joules` is negative or not finite.
    pub fn record(&mut self, cat: EnergyCategory, joules: f64) {
        assert!(
            joules.is_finite() && joules >= 0.0,
            "recorded energy must be non-negative"
        );
        let e = &mut self.entries[index_of(cat)];
        e.0 += joules;
        e.1 += 1;
    }

    /// Total joules recorded against a category.
    pub fn get(&self, cat: EnergyCategory) -> f64 {
        self.entries[index_of(cat)].0
    }

    /// Number of events recorded against a category.
    pub fn count(&self, cat: EnergyCategory) -> u64 {
        self.entries[index_of(cat)].1
    }

    /// Total joules across all categories.
    pub fn total(&self) -> f64 {
        self.entries.iter().map(|e| e.0).sum()
    }

    /// Total excluding the idle baseline — the "work energy" compared across
    /// schemes in Fig. 7.
    pub fn total_active(&self) -> f64 {
        self.total() - self.get(EnergyCategory::Idle)
    }

    /// Moves `joules` already recorded under `from` into the `to` bucket,
    /// clamped to what `from` actually holds. Event counts stay put — the
    /// events happened where they happened; only the verdict on the energy
    /// changes (e.g. banked upload joules become `Salvaged` when the cut
    /// transfer's prefix decodes). The ledger total is preserved exactly.
    ///
    /// Returns the joules actually moved.
    ///
    /// # Panics
    ///
    /// Panics if `joules` is negative or not finite.
    pub fn reassign(&mut self, from: EnergyCategory, to: EnergyCategory, joules: f64) -> f64 {
        assert!(
            joules.is_finite() && joules >= 0.0,
            "reassigned energy must be non-negative"
        );
        if from == to {
            return 0.0;
        }
        let moved = joules.min(self.entries[index_of(from)].0);
        self.entries[index_of(from)].0 -= moved;
        self.entries[index_of(to)].0 += moved;
        moved
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &EnergyLedger) {
        for (mine, theirs) in self.entries.iter_mut().zip(&other.entries) {
            mine.0 += theirs.0;
            mine.1 += theirs.1;
        }
    }

    /// Resets all buckets to zero.
    pub fn clear(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_accumulate_independently() {
        let mut l = EnergyLedger::new();
        l.record(EnergyCategory::FeatureExtraction, 1.0);
        l.record(EnergyCategory::ImageUpload, 2.0);
        l.record(EnergyCategory::FeatureExtraction, 0.5);
        assert_eq!(l.get(EnergyCategory::FeatureExtraction), 1.5);
        assert_eq!(l.get(EnergyCategory::ImageUpload), 2.0);
        assert_eq!(l.get(EnergyCategory::Download), 0.0);
        assert_eq!(l.count(EnergyCategory::FeatureExtraction), 2);
        assert_eq!(l.total(), 3.5);
    }

    #[test]
    fn wasted_counts_as_active_work() {
        // Energy burnt on failed attempts is real battery drain, not idle:
        // it must show up in the Fig. 7-style active comparison.
        let mut l = EnergyLedger::new();
        l.record(EnergyCategory::Wasted, 3.0);
        l.record(EnergyCategory::Idle, 2.0);
        assert_eq!(l.get(EnergyCategory::Wasted), 3.0);
        assert_eq!(l.total(), 5.0);
        assert_eq!(l.total_active(), 3.0);
        assert_eq!(EnergyCategory::Wasted.to_string(), "wasted");
    }

    #[test]
    fn total_active_excludes_idle() {
        let mut l = EnergyLedger::new();
        l.record(EnergyCategory::Idle, 10.0);
        l.record(EnergyCategory::ImageUpload, 5.0);
        assert_eq!(l.total(), 15.0);
        assert_eq!(l.total_active(), 5.0);
    }

    #[test]
    fn merge_adds_buckets() {
        let mut a = EnergyLedger::new();
        a.record(EnergyCategory::FeatureUpload, 1.0);
        let mut b = EnergyLedger::new();
        b.record(EnergyCategory::FeatureUpload, 2.0);
        b.record(EnergyCategory::Compression, 4.0);
        a.merge(&b);
        assert_eq!(a.get(EnergyCategory::FeatureUpload), 3.0);
        assert_eq!(a.get(EnergyCategory::Compression), 4.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_energy_rejected() {
        EnergyLedger::new().record(EnergyCategory::Idle, -1.0);
    }

    #[test]
    fn reassign_moves_joules_but_not_events() {
        let mut l = EnergyLedger::new();
        l.record(EnergyCategory::ImageUpload, 10.0);
        l.record(EnergyCategory::ImageUpload, 2.0);
        let moved = l.reassign(EnergyCategory::ImageUpload, EnergyCategory::Salvaged, 7.0);
        assert_eq!(moved, 7.0);
        assert_eq!(l.get(EnergyCategory::ImageUpload), 5.0);
        assert_eq!(l.get(EnergyCategory::Salvaged), 7.0);
        // Events stay where they were recorded; only the joules move.
        assert_eq!(l.count(EnergyCategory::ImageUpload), 2);
        assert_eq!(l.count(EnergyCategory::Salvaged), 0);
        assert_eq!(l.total(), 12.0);
    }

    #[test]
    fn reassign_clamps_to_the_source_bucket() {
        let mut l = EnergyLedger::new();
        l.record(EnergyCategory::Wasted, 3.0);
        let moved = l.reassign(EnergyCategory::Wasted, EnergyCategory::Salvaged, 100.0);
        assert_eq!(moved, 3.0);
        assert_eq!(l.get(EnergyCategory::Wasted), 0.0);
        assert_eq!(l.get(EnergyCategory::Salvaged), 3.0);
        // Self-reassignment is a no-op, not a double count.
        assert_eq!(
            l.reassign(EnergyCategory::Salvaged, EnergyCategory::Salvaged, 1.0),
            0.0
        );
        assert_eq!(l.get(EnergyCategory::Salvaged), 3.0);
        assert_eq!(EnergyCategory::Salvaged.to_string(), "salvaged");
    }

    #[test]
    fn legacy_seven_bucket_ledgers_pad_with_empty_salvage() {
        // Reports serialized before `Salvaged` and `PullDown` existed carry
        // 7 buckets; they must round-trip through the repr with the
        // trailing buckets empty.
        let legacy = LedgerRepr {
            entries: vec![
                (1.0, 1),
                (2.0, 1),
                (3.0, 2),
                (0.0, 0),
                (4.0, 1),
                (5.0, 3),
                (6.0, 1),
            ],
        };
        let ledger = EnergyLedger::from(legacy);
        assert_eq!(ledger.get(EnergyCategory::Salvaged), 0.0);
        assert_eq!(ledger.get(EnergyCategory::PullDown), 0.0);
        assert_eq!(ledger.get(EnergyCategory::Idle), 6.0);
        assert_eq!(ledger.total(), 21.0);
        let back = LedgerRepr::from(ledger);
        assert_eq!(back.entries.len(), 9);
        assert_eq!(back.entries[7], (0.0, 0));
        assert_eq!(back.entries[8], (0.0, 0));
        assert_eq!(EnergyCategory::PullDown.to_string(), "pull-down");
    }

    #[test]
    fn clear_resets() {
        let mut l = EnergyLedger::new();
        l.record(EnergyCategory::Idle, 1.0);
        l.clear();
        assert_eq!(l.total(), 0.0);
    }
}
