//! Property-based tests of the energy substrate: battery conservation,
//! adaptive-scheme monotonicity, and cost-model linearity.

use bees_energy::{
    AdaptiveScheme, Battery, EnergyCategory, EnergyLedger, EnergyModel, LinearScheme,
};
use bees_features::{ExtractionStats, ExtractorKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn battery_conserves_energy(capacity in 1.0f64..10_000.0, drains in proptest::collection::vec(0.0f64..1_000.0, 0..30)) {
        let mut b = Battery::from_joules(capacity);
        let mut total_drained = 0.0;
        for d in drains {
            total_drained += b.drain(d);
        }
        prop_assert!((b.remaining_joules() + total_drained - capacity).abs() < 1e-6);
    }

    #[test]
    fn eac_and_eau_fall_with_battery_edr_rises(e1 in 0.0f64..1.0, e2 in 0.0f64..1.0) {
        let (lo, hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
        // More battery -> less compression.
        prop_assert!(LinearScheme::eac().value(hi) <= LinearScheme::eac().value(lo) + 1e-12);
        prop_assert!(LinearScheme::eau().value(hi) <= LinearScheme::eau().value(lo) + 1e-12);
        // More battery -> higher (stricter) redundancy threshold.
        let edr = LinearScheme::edr(0.12, 0.03);
        prop_assert!(edr.value(hi) >= edr.value(lo) - 1e-12);
    }

    #[test]
    fn extraction_energy_is_linear_in_work(pixels in 0usize..10_000_000, kps in 0usize..5_000) {
        let m = EnergyModel::default();
        for kind in [ExtractorKind::Orb, ExtractorKind::Sift, ExtractorKind::PcaSift] {
            let one = ExtractionStats { pixels_processed: pixels, keypoints_described: kps, descriptor_bytes: 0 };
            let double = ExtractionStats { pixels_processed: pixels * 2, keypoints_described: kps * 2, descriptor_bytes: 0 };
            let e1 = m.extraction_energy(kind, &one);
            let e2 = m.extraction_energy(kind, &double);
            prop_assert!((e2 - 2.0 * e1).abs() < 1e-9 * (1.0 + e2), "{kind:?}");
            prop_assert!(e1 >= 0.0);
        }
    }

    #[test]
    fn orb_is_cheapest_for_any_workload(pixels in 1usize..10_000_000, kps in 1usize..5_000) {
        let m = EnergyModel::default();
        let stats = ExtractionStats { pixels_processed: pixels, keypoints_described: kps, descriptor_bytes: 0 };
        let orb = m.extraction_energy(ExtractorKind::Orb, &stats);
        let sift = m.extraction_energy(ExtractorKind::Sift, &stats);
        let pca = m.extraction_energy(ExtractorKind::PcaSift, &stats);
        prop_assert!(orb < sift);
        prop_assert!(sift <= pca);
    }

    #[test]
    fn ledger_merge_is_additive(
        a in proptest::collection::vec((0u8..8, 0.0f64..50.0), 0..20),
        b in proptest::collection::vec((0u8..8, 0.0f64..50.0), 0..20),
    ) {
        let fill = |entries: &[(u8, f64)]| {
            let mut l = EnergyLedger::new();
            for &(c, j) in entries {
                l.record(EnergyCategory::ALL[c as usize], j);
            }
            l
        };
        let la = fill(&a);
        let lb = fill(&b);
        let mut merged = la.clone();
        merged.merge(&lb);
        prop_assert!((merged.total() - la.total() - lb.total()).abs() < 1e-9);
        for cat in EnergyCategory::ALL {
            prop_assert!((merged.get(cat) - la.get(cat) - lb.get(cat)).abs() < 1e-9);
            prop_assert_eq!(merged.count(cat), la.count(cat) + lb.count(cat));
        }
    }

    #[test]
    fn radio_energy_scales_with_time(t in 0.0f64..100_000.0) {
        let m = EnergyModel::default();
        prop_assert!((m.radio_tx_energy(t) - t * m.radio_tx_watts).abs() < 1e-9);
        prop_assert!(m.radio_rx_energy(t) <= m.radio_tx_energy(t));
    }
}
