//! Offline stand-in for `serde`.
//!
//! Provides just enough surface for the workspace to type-check without
//! crates.io: the two marker traits with blanket impls (so every `T:
//! Serialize` / `T: Deserialize` bound is satisfied) and re-exports of the
//! no-op derives from the `serde_derive` stub. Anything that actually
//! serializes goes through `serde_json`, whose stub aborts at runtime —
//! offline tests must not rely on serialization.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Mirror of `serde::de`.
pub mod de {
    pub use crate::Deserialize;

    /// Marker stand-in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}
    impl<T> DeserializeOwned for T {}
}

/// Mirror of `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}
