//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The container running the offline check harness has no access to
//! crates.io, so `scripts/offline_check.sh` compiles this no-op derive
//! instead. `#[derive(Serialize, Deserialize)]` expands to nothing; the
//! companion `serde.rs` stub provides blanket trait impls so bounds like
//! `T: Serialize` still hold. Real serialization is exercised by CI with
//! the genuine crates.

extern crate proc_macro;

use proc_macro::TokenStream;

/// No-op replacement for `#[derive(Serialize)]`; swallows `#[serde(...)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `#[derive(Deserialize)]`; swallows `#[serde(...)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
