//! Offline stand-in for `serde_json`.
//!
//! Type-checks the workspace's serde_json call sites but aborts if any of
//! them actually run: the offline harness only executes tests that avoid
//! JSON (de)serialization. CI with the real crates covers the rest.

use std::fmt;

/// Stand-in for `serde_json::Error`.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("offline serde_json stub")
    }
}

impl std::error::Error for Error {}

/// Stand-in for `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Stand-in for `serde_json::Map` (object representation).
pub type Map<K, V> = std::collections::BTreeMap<K, V>;

/// Stand-in for `serde_json::Value`; every accessor aborts.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The only inhabitant; never constructed by working code offline.
    Null,
}

impl Value {
    /// Aborts: the offline stub cannot represent JSON objects.
    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        unimplemented!("offline serde_json stub: JSON values unavailable")
    }

    /// Aborts: the offline stub cannot represent JSON objects.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        unimplemented!("offline serde_json stub: JSON values unavailable")
    }

    /// Aborts: the offline stub cannot index into JSON values.
    pub fn get(&self, _key: &str) -> Option<&Value> {
        unimplemented!("offline serde_json stub: JSON values unavailable")
    }
}

/// Aborts at runtime; exists so `serde_json::to_string` call sites compile.
pub fn to_string<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    unimplemented!("offline serde_json stub: serialization unavailable")
}

/// Aborts at runtime; exists so `serde_json::to_string_pretty` call sites compile.
pub fn to_string_pretty<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    unimplemented!("offline serde_json stub: serialization unavailable")
}

/// Aborts at runtime; exists so `serde_json::from_str` call sites compile.
pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T> {
    unimplemented!("offline serde_json stub: deserialization unavailable")
}
