//! Offline stand-in for `rand_chacha`.
//!
//! A real ChaCha (8-round) keystream generator implementing the stub
//! `rand` traits. Not bit-compatible with upstream `rand_chacha` word
//! ordering — the workspace only ever compares streams against themselves
//! (same seed, two runs), never against upstream golden values — but it is
//! a genuine cryptographic-quality PRNG, so statistical assumptions in
//! tests (no 256-bit collisions, Bernoulli rates, uniform ranges) hold.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, keyed from a 32-byte seed.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    state: [u32; 16],
    buf: [u32; 16],
    pos: usize,
}

#[inline]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut x = self.state;
        for _ in 0..4 {
            // One double round: four column then four diagonal quarters.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (out, (&mixed, &init)) in self.buf.iter_mut().zip(x.iter().zip(&self.state)) {
            *out = mixed.wrapping_add(init);
        }
        // 64-bit block counter lives in words 12..14.
        self.state[12] = self.state[12].wrapping_add(1);
        if self.state[12] == 0 {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.pos = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k" sigma constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (word, chunk) in state[4..12].iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        // Words 12..16 (counter + nonce) start at zero.
        ChaCha8Rng {
            state,
            buf: [0; 16],
            pos: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.pos >= 16 {
            self.refill();
        }
        let word = self.buf[self.pos];
        self.pos += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}
