//! Offline stand-in for `rand` (0.8 API subset).
//!
//! Implements exactly the surface this workspace uses: `RngCore`,
//! `SeedableRng::{from_seed, seed_from_u64}`, the blanket `Rng` extension
//! (`gen`, `gen_range`, `gen_bool`, `fill`) and `seq::SliceRandom::shuffle`.
//! The workspace never compares its pseudo-random streams against golden
//! values from upstream `rand` — every test compares run-vs-run with the
//! same seed — so bit-compatibility with the real crate is not required,
//! only determinism and reasonable uniformity.

use std::ops::{Range, RangeInclusive};

/// Core random-number source, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 (deterministic).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Uniform sampling from the "standard" distribution of a type.
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*}
}

standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, i8 => next_u32,
              i16 => next_u32, i32 => next_u32, u64 => next_u64, i64 => next_u64,
              usize => next_u64, isize => next_u64);

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types samplable over a range (mirrors `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized {
    /// Uniform draw in `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (hi as i128)
                    .wrapping_sub(lo as i128)
                    .wrapping_add(i128::from(inclusive)) as u128;
                assert!(span > 0, "cannot sample empty range");
                let off = (rng.next_u64() as u128 % span) as i128;
                ((lo as i128) + off) as $t
            }
        }
    )*}
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let unit: $t = StandardSample::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*}
}

uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
///
/// A single generic impl per range shape (like the real crate) so that type
/// inference can unify the range's element type with `T` immediately.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_in(lo, hi, true, rng)
    }
}

/// Convenience extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value from the type's standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        let unit: f64 = StandardSample::sample(self);
        unit < p
    }

    /// Fill a byte buffer with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Mirror of `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}
