#!/usr/bin/env python3
"""Compare a bench metrics file against the checked-in baseline.

Both files are JSON Lines as emitted by ``--json-out`` on the bench
binaries (``crates/bench/src/perf.rs``): one object per line with keys
``bench`` / ``case`` / ``metric`` / ``value`` and an optional ``dir``.
Metrics default to higher-is-better (throughputs and speedups), where a
regression is ``current < baseline * (1 - tolerance)``. Lines tagged
``"dir": "lower"`` (costs: wasted joules, delays) invert the band: a
regression is ``current > baseline * (1 + tolerance)``. The direction
comes from the *baseline* line, so flipping a metric's direction is an
explicit baseline edit.

The tolerance band is deliberately generous (default 0.35): these are
wall-clock numbers from shared CI runners, and the same kernel can vary
tens of percent between binaries depending on how LLVM lays out the
surrounding code. The band catches order-of-magnitude cliffs (a lost
SIMD path, an accidental O(n^2)), not noise.

Usage:
  scripts/perf_check.py --baseline BENCH_baseline.json --current out.json
  scripts/perf_check.py ... --tolerance 0.5   # widen the band
  scripts/perf_check.py ... --no-fail         # report only, exit 0 (CI smoke)

Exit status: 0 if no metric regressed (or --no-fail), 1 otherwise.
"""

import argparse
import json
import sys


def load_metrics(path):
    """Parse a JSON-lines metrics file into {(bench, case, metric): (value, dir)}."""
    metrics = {}
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                key = (row["bench"], row["case"], row["metric"])
                direction = row.get("dir", "higher")
                if direction not in ("higher", "lower"):
                    raise ValueError(f"bad dir {direction!r}")
                metrics[key] = (float(row["value"]), direction)
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as err:
                raise SystemExit(f"{path}:{lineno}: bad metric line: {err}")
    if not metrics:
        raise SystemExit(f"{path}: no metrics found")
    return metrics


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="checked-in baseline (JSON lines)")
    parser.add_argument("--current", required=True, help="freshly measured metrics (JSON lines)")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.35,
        help="allowed fractional drop below baseline before failing (default 0.35)",
    )
    parser.add_argument(
        "--no-fail",
        action="store_true",
        help="report regressions but always exit 0 (for CI smoke runs)",
    )
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")

    baseline = load_metrics(args.baseline)
    current = load_metrics(args.current)

    regressions = []
    improvements = 0
    compared = 0
    for key in sorted(baseline):
        if key not in current:
            print(f"MISSING  {'/'.join(key)} (in baseline, not measured)")
            continue
        compared += 1
        base, direction = baseline[key]
        cur = current[key][0]
        ratio = cur / base if base else float("inf")
        if direction == "lower":
            # Cost metric: growing past the band is the regression.
            regressed = cur > base * (1.0 + args.tolerance)
            improved = cur < base
        else:
            regressed = cur < base * (1.0 - args.tolerance)
            improved = cur > base
        tag = "ok"
        if regressed:
            tag = "REGRESS"
            regressions.append(key)
        elif improved:
            improvements += 1
        arrow = " [lower-is-better]" if direction == "lower" else ""
        print(
            f"{tag:<8} {'/'.join(key)}: {cur:.3f} vs baseline {base:.3f} "
            f"({ratio:.2f}x){arrow}"
        )

    unmatched = sorted(set(current) - set(baseline))
    for key in unmatched:
        print(f"NEW      {'/'.join(key)}: {current[key][0]:.3f} (not in baseline)")

    print(
        f"\n{compared} metrics compared, {improvements} above baseline, "
        f"{len(regressions)} regressed (tolerance {args.tolerance:.0%}), "
        f"{len(unmatched)} not in baseline"
    )
    if unmatched and not args.no_fail:
        print(
            "FAIL: measured metrics missing from the baseline — either the "
            "bench grew new cases or the run used a different scale than the "
            "baseline was recorded at. Unmatched keys:",
            file=sys.stderr,
        )
        for key in unmatched:
            print(f"  {'/'.join(key)}", file=sys.stderr)
        print(
            f"Append the new lines to {args.baseline} (see DESIGN.md §10) "
            "or rerun at the baseline's scale.",
            file=sys.stderr,
        )
        return 1
    if regressions and not args.no_fail:
        print("FAIL: regressions beyond the tolerance band", file=sys.stderr)
        return 1
    if regressions or unmatched:
        print("problems ignored (--no-fail)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
