#!/usr/bin/env python3
"""Runs the runtime scaling benchmark and emits BENCH_runtime.json.

Usage:
    python3 scripts/bench_runtime.py [--skip-run] [--out BENCH_runtime.json]

Invokes `cargo bench -p bees-bench --bench runtime`, then harvests
criterion's `target/criterion/**/new/estimates.json` files into a single
summary: mean wall-clock per benchmark plus derived speedups of the
thread-sweep groups relative to their single-thread entry. `--skip-run`
reuses estimates from a previous bench run.
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
CRITERION = REPO / "target" / "criterion"
SWEEP_GROUPS = ("orb_threads", "match_binary_threads")


def run_bench() -> None:
    cmd = ["cargo", "bench", "-p", "bees-bench", "--bench", "runtime"]
    print("+ " + " ".join(cmd), file=sys.stderr)
    subprocess.run(cmd, cwd=REPO, check=True)


def harvest() -> dict:
    """Collects mean estimates (ns) keyed by `group/bench_id`."""
    results = {}
    for estimates in sorted(CRITERION.glob("**/new/estimates.json")):
        bench_dir = estimates.parent.parent
        benchmark = json.loads((bench_dir / "new" / "benchmark.json").read_text())
        full_id = benchmark.get("full_id", bench_dir.name)
        mean_ns = json.loads(estimates.read_text())["mean"]["point_estimate"]
        results[full_id] = {"mean_ns": mean_ns}
    return results


def add_speedups(results: dict) -> dict:
    """Derives speedup-vs-1-thread for each thread-sweep group."""
    speedups = {}
    for group in SWEEP_GROUPS:
        base = results.get(f"{group}/1", {}).get("mean_ns")
        if not base:
            continue
        for full_id, entry in results.items():
            prefix = f"{group}/"
            if full_id.startswith(prefix):
                threads = full_id[len(prefix):]
                speedups.setdefault(group, {})[threads] = base / entry["mean_ns"]
    return speedups


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--skip-run", action="store_true",
                        help="harvest existing criterion output without benching")
    parser.add_argument("--out", type=Path, default=REPO / "BENCH_runtime.json")
    args = parser.parse_args()

    if not args.skip_run:
        run_bench()
    if not CRITERION.exists():
        print(f"error: {CRITERION} not found; run the bench first", file=sys.stderr)
        return 1

    results = {k: v for k, v in harvest().items()
               if k.startswith(("par_map_overhead", *SWEEP_GROUPS))}
    if not results:
        print("error: no runtime benchmark estimates found", file=sys.stderr)
        return 1
    payload = {
        "benchmark": "runtime",
        "results": results,
        "speedup_vs_1_thread": add_speedups(results),
    }
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
