#!/usr/bin/env python3
"""Render a fleet_scaling JSONL result as a devices x shards summary table.

Usage:
    python3 scripts/fleet_summary.py fleet.jsonl
    cargo run --release --bin fleet_scaling -- --json-out /dev/stdout \
        | python3 scripts/fleet_summary.py -

Input format (one JSON object per line, written by `--json-out`):
    {"devices":4,"shards":2,"report":{"scheme":"bees-ea", ...}}

Prints one row per sweep cell (captured/uploaded images, redundancy
elimination, server queries, per-device exhaustion) and verifies the
sweep's determinism contract: for each fleet size, every shard count must
report identical numbers. Also checks each row's internal accounting:
the salvage ledger (``salvaged_images == partials_upgraded +
partials_pending``), the shared-cell contention counters
(fleet-level ``grants_issued`` / ``grants_denied`` /
``deadline_abandons`` must equal the per-device sums, and the
utilization series must be non-negative), and the pull-down ledger
(``pulldown_requests == pulldown_fulfilled + pulldown_denied``, with
bytes and joules only when something was actually fetched), and the
storage ledger (``stored_bytes - reclaimed_bytes == live_blob_bytes``,
with the cumulative ``storage_epochs`` series monotone and bounded by
the run totals).
Stdlib only.
"""

import json
import sys
from collections import defaultdict


def summarize(lines):
    cells = []
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            print(f"warning: line {lineno}: {e}", file=sys.stderr)
            continue
        report = obj.get("report")
        if not isinstance(report, dict):
            print(f"warning: line {lineno}: no report object", file=sys.stderr)
            continue
        cells.append({"devices": obj.get("devices"),
                      "shards": obj.get("shards"),
                      "report": report})
    return cells


def check_shard_invariance(cells):
    """Reports must be identical across shard counts for each fleet size."""
    by_devices = defaultdict(list)
    for c in cells:
        by_devices[c["devices"]].append(c)
    ok = True
    for devices, group in sorted(by_devices.items()):
        canon = {json.dumps(c["report"], sort_keys=True) for c in group}
        if len(canon) != 1:
            shards = sorted(c["shards"] for c in group)
            print(f"DETERMINISM VIOLATION: devices={devices} reports differ "
                  f"across shards {shards}", file=sys.stderr)
            ok = False
    return ok


def check_row_invariants(cells):
    """Per-row accounting: the salvage ledger and contention counters."""
    ok = True

    def complain(cell, msg):
        nonlocal ok
        print(f"ACCOUNTING VIOLATION: devices={cell['devices']} "
              f"shards={cell['shards']}: {msg}", file=sys.stderr)
        ok = False

    for c in cells:
        r = c["report"]
        salvaged = r.get("salvaged_images", 0)
        upgraded = r.get("partials_upgraded", 0)
        pending = r.get("partials_pending", 0)
        if salvaged != upgraded + pending:
            complain(c, f"salvaged_images={salvaged} != partials_upgraded="
                        f"{upgraded} + partials_pending={pending}")
        devices = r.get("devices", [])
        for total_key, device_key in [("grants_issued", "grants"),
                                      ("grants_denied", "denied"),
                                      ("deadline_abandons",
                                       "deadline_abandons")]:
            total = r.get(total_key, 0)
            per_device = sum(d.get(device_key, 0) for d in devices)
            if total != per_device:
                complain(c, f"{total_key}={total} != per-device sum "
                            f"{per_device}")
        for i, u in enumerate(r.get("cell_utilization", [])):
            if not isinstance(u, (int, float)) or u != u or u < 0.0:
                complain(c, f"cell_utilization[{i}]={u!r} is not a "
                            f"non-negative number")
        starving = r.get("grants_denied", 0)
        if starving and not r.get("grants_issued", 0) \
                and not r.get("devices_exhausted", 0):
            complain(c, f"{starving} denials but no grants and no deaths "
                        f"(scheduler wedged?)")
        requests = r.get("pulldown_requests", 0)
        fulfilled = r.get("pulldown_fulfilled", 0)
        denied = r.get("pulldown_denied", 0)
        if requests != fulfilled + denied:
            complain(c, f"pulldown_requests={requests} != "
                        f"pulldown_fulfilled={fulfilled} + "
                        f"pulldown_denied={denied}")
        pd_bytes = r.get("pulldown_bytes", 0)
        pd_joules = r.get("pulldown_joules", 0.0)
        if fulfilled and not pd_bytes:
            complain(c, f"{fulfilled} pull-down fetches moved zero bytes")
        if not fulfilled and (pd_bytes or pd_joules > 1e-9):
            complain(c, f"pulldown_bytes={pd_bytes} / pulldown_joules="
                        f"{pd_joules} without a fulfilled fetch")
        stored = r.get("stored_bytes", 0)
        reclaimed = r.get("reclaimed_bytes", 0)
        live = r.get("live_blob_bytes", 0)
        if stored - reclaimed != live:
            complain(c, f"stored_bytes={stored} - reclaimed_bytes="
                        f"{reclaimed} != live_blob_bytes={live}")
        epochs = r.get("storage_epochs", [])
        if epochs:
            last = epochs[-1]
            for key, total in [("stored_bytes", stored),
                               ("reclaimed_bytes", reclaimed),
                               ("dedup_hits", r.get("dedup_hits", 0))]:
                if last.get(key, 0) > total:
                    complain(c, f"storage_epochs[-1].{key}="
                                f"{last.get(key, 0)} exceeds run total "
                                f"{total}")
            for i in range(1, len(epochs)):
                for key in ("stored_bytes", "reclaimed_bytes",
                            "dedup_hits"):
                    if epochs[i].get(key, 0) < epochs[i - 1].get(key, 0):
                        complain(c, f"storage_epochs[{i}].{key} decreased "
                                    f"(cumulative series must be "
                                    f"monotone)")
    return ok


def print_table(cells):
    header = ["devices", "shards", "scheme", "captured", "uploaded",
              "elim %", "queries", "exhausted", "grants", "denied",
              "abandoned", "pulled", "dedup", "live KiB"]
    rows = [header]
    for c in cells:
        r = c["report"]
        elim = 100.0 * float(r.get("redundancy_elimination", 0.0))
        rows.append([str(c["devices"]), str(c["shards"]),
                     str(r.get("scheme", "?")),
                     str(r.get("images_captured", 0)),
                     str(r.get("images_uploaded", 0)),
                     f"{elim:.1f}",
                     str(r.get("server_queries", 0)),
                     str(r.get("devices_exhausted", 0)),
                     str(r.get("grants_issued", 0)),
                     str(r.get("grants_denied", 0)),
                     str(r.get("deadline_abandons", 0)),
                     str(r.get("pulldown_fulfilled", 0)),
                     str(r.get("dedup_hits", 0)),
                     f"{r.get('live_blob_bytes', 0) / 1024.0:.1f}"])
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    for i, row in enumerate(rows):
        print("  ".join(cell.ljust(w) if j <= 2 else cell.rjust(w)
                        for j, (cell, w) in enumerate(zip(row, widths))))
        if i == 0:
            print("  ".join("-" * w for w in widths))


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = sys.argv[1]
    if path == "-":
        cells = summarize(sys.stdin)
    else:
        with open(path, encoding="utf-8") as f:
            cells = summarize(f)
    if not cells:
        print("no fleet cells found", file=sys.stderr)
        return 1
    print_table(cells)
    failed = False
    if not check_shard_invariance(cells):
        failed = True
    else:
        print("reports byte-identical across shard counts: true")
    if not check_row_invariants(cells):
        failed = True
    else:
        print("salvage, contention, and storage ledgers consistent: true")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
