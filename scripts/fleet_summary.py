#!/usr/bin/env python3
"""Render a fleet_scaling JSONL result as a devices x shards summary table.

Usage:
    python3 scripts/fleet_summary.py fleet.jsonl
    cargo run --release --bin fleet_scaling -- --json-out /dev/stdout \
        | python3 scripts/fleet_summary.py -

Input format (one JSON object per line, written by `--json-out`):
    {"devices":4,"shards":2,"report":{"scheme":"bees-ea", ...}}

Prints one row per sweep cell (captured/uploaded images, redundancy
elimination, server queries, per-device exhaustion) and verifies the
sweep's determinism contract: for each fleet size, every shard count must
report identical numbers. Stdlib only.
"""

import json
import sys
from collections import defaultdict


def summarize(lines):
    cells = []
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            print(f"warning: line {lineno}: {e}", file=sys.stderr)
            continue
        report = obj.get("report")
        if not isinstance(report, dict):
            print(f"warning: line {lineno}: no report object", file=sys.stderr)
            continue
        cells.append({"devices": obj.get("devices"),
                      "shards": obj.get("shards"),
                      "report": report})
    return cells


def check_shard_invariance(cells):
    """Reports must be identical across shard counts for each fleet size."""
    by_devices = defaultdict(list)
    for c in cells:
        by_devices[c["devices"]].append(c)
    ok = True
    for devices, group in sorted(by_devices.items()):
        canon = {json.dumps(c["report"], sort_keys=True) for c in group}
        if len(canon) != 1:
            shards = sorted(c["shards"] for c in group)
            print(f"DETERMINISM VIOLATION: devices={devices} reports differ "
                  f"across shards {shards}", file=sys.stderr)
            ok = False
    return ok


def print_table(cells):
    header = ["devices", "shards", "scheme", "captured", "uploaded",
              "elim %", "queries", "exhausted"]
    rows = [header]
    for c in cells:
        r = c["report"]
        elim = 100.0 * float(r.get("redundancy_elimination", 0.0))
        rows.append([str(c["devices"]), str(c["shards"]),
                     str(r.get("scheme", "?")),
                     str(r.get("images_captured", 0)),
                     str(r.get("images_uploaded", 0)),
                     f"{elim:.1f}",
                     str(r.get("server_queries", 0)),
                     str(r.get("devices_exhausted", 0))])
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    for i, row in enumerate(rows):
        print("  ".join(cell.ljust(w) if j <= 2 else cell.rjust(w)
                        for j, (cell, w) in enumerate(zip(row, widths))))
        if i == 0:
            print("  ".join("-" * w for w in widths))


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = sys.argv[1]
    if path == "-":
        cells = summarize(sys.stdin)
    else:
        with open(path, encoding="utf-8") as f:
            cells = summarize(f)
    if not cells:
        print("no fleet cells found", file=sys.stderr)
        return 1
    print_table(cells)
    if not check_shard_invariance(cells):
        return 1
    print("reports byte-identical across shard counts: true")
    return 0


if __name__ == "__main__":
    sys.exit(main())
