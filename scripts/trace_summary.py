#!/usr/bin/env python3
"""Render a bees-telemetry JSONL trace as a per-stage summary table.

Usage:
    python3 scripts/trace_summary.py trace.jsonl
    cargo run --release --bin telemetry_report -- --trace-out /dev/stdout \
        | python3 scripts/trace_summary.py -

Input format (one JSON object per line):
    {"manifest":{"schema":1,"config_hash":"…","seed":…,"crates":{…}}}
    {"span":"afe.orb","start_s":0,"end_s":1.5,"attrs":{"joules":2.1,…}}

The table mirrors the one the `telemetry_report` binary prints: span
count, mean/total/max duration on the simulated clock, and the summed
`bytes`/`joules` attributes, per stage name. Stdlib only.
"""

import json
import sys
from collections import defaultdict


def summarize(lines):
    manifest = None
    stages = defaultdict(lambda: {"count": 0, "total_s": 0.0, "max_s": 0.0,
                                  "bytes": 0, "joules": 0.0})
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            print(f"warning: line {lineno}: {e}", file=sys.stderr)
            continue
        if "manifest" in obj:
            manifest = obj["manifest"]
            continue
        name = obj.get("span")
        if name is None:
            print(f"warning: line {lineno}: neither manifest nor span",
                  file=sys.stderr)
            continue
        st = stages[name]
        duration = float(obj.get("end_s", 0.0)) - float(obj.get("start_s", 0.0))
        st["count"] += 1
        st["total_s"] += duration
        st["max_s"] = max(st["max_s"], duration)
        attrs = obj.get("attrs", {})
        if isinstance(attrs.get("bytes"), int):
            st["bytes"] += attrs["bytes"]
        if isinstance(attrs.get("joules"), (int, float)):
            st["joules"] += attrs["joules"]
    return manifest, stages


def print_table(manifest, stages):
    if manifest is not None:
        crates = ", ".join(f"{k} {v}" for k, v in
                           manifest.get("crates", {}).items())
        print(f"run manifest: schema {manifest.get('schema')}, "
              f"config {manifest.get('config_hash')}, "
              f"seed {manifest.get('seed')}"
              + (f" ({crates})" if crates else ""))
    header = ["stage", "spans", "mean (s)", "total (s)", "max (s)",
              "bytes", "joules"]
    rows = [header]
    for name in sorted(stages):
        st = stages[name]
        mean = st["total_s"] / st["count"] if st["count"] else 0.0
        rows.append([name, str(st["count"]), f"{mean:.3f}",
                     f"{st['total_s']:.3f}", f"{st['max_s']:.3f}",
                     str(st["bytes"]), f"{st['joules']:.1f}"])
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    for i, row in enumerate(rows):
        print("  ".join(cell.ljust(w) if j == 0 else cell.rjust(w)
                        for j, (cell, w) in enumerate(zip(row, widths))))
        if i == 0:
            print("  ".join("-" * w for w in widths))


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = sys.argv[1]
    if path == "-":
        manifest, stages = summarize(sys.stdin)
    else:
        with open(path, encoding="utf-8") as f:
            manifest, stages = summarize(f)
    if not stages:
        print("no spans found", file=sys.stderr)
        return 1
    print_table(manifest, stages)
    return 0


if __name__ == "__main__":
    sys.exit(main())
