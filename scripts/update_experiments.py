#!/usr/bin/env python3
"""Injects run_all output into EXPERIMENTS.md.

Usage:
    cargo run --release -p bees-bench --bin run_all > /tmp/run_all.txt
    python3 scripts/update_experiments.py /tmp/run_all.txt

Each `<!-- MEASURED:<tag> -->` marker in EXPERIMENTS.md is replaced by the
marker plus a fenced code block holding the corresponding section of the
run_all output. Section headers in the output look like `== Fig. 7: ... ==`.
"""

import re
import sys
from pathlib import Path

TAG_PATTERNS = {
    "fig3": r"== Fig\. 3",
    "fig4": r"== Fig\. 4",
    "fig5": r"== Fig\. 5",
    "fig6": r"== Fig\. 6",
    "table1": r"== Table I",
    "fig7": r"== Fig\. 7",
    "fig8": r"== Fig\. 8",
    "fig9": r"== Fig\. 9",
    "fig10": r"== Fig\. 10",
    "fig11": r"== Fig\. 11",
    "fig12": r"== Fig\. 12",
}


def split_sections(text: str) -> list[tuple[str, str]]:
    """Returns (header, body) pairs for each `== ... ==` section."""
    parts = re.split(r"(?m)^(== .+ ==)$", text)
    sections = []
    for i in range(1, len(parts) - 1, 2):
        sections.append((parts[i], parts[i] + "\n" + parts[i + 1].strip("\n")))
    return sections


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    run_output = Path(sys.argv[1]).read_text()
    experiments = Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
    doc = experiments.read_text()

    sections = split_sections(run_output)
    for tag, pattern in TAG_PATTERNS.items():
        matching = [body for header, body in sections if re.match(pattern, header)]
        if not matching:
            print(f"warning: no run_all section for {tag}")
            continue
        block = "\n\n".join(matching)
        replacement = f"<!-- MEASURED:{tag} -->\n\n```text\n{block}\n```"
        marker = re.compile(
            rf"<!-- MEASURED:{tag} -->(?:\n\n```text\n.*?\n```)?",
            re.DOTALL,
        )
        if not marker.search(doc):
            print(f"warning: no marker for {tag} in EXPERIMENTS.md")
            continue
        doc = marker.sub(lambda _m: replacement, doc, count=1)

    experiments.write_text(doc)
    print(f"updated {experiments}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
