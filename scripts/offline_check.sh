#!/usr/bin/env bash
# Offline compile + lint + test harness for containers without crates.io.
#
# `cargo` cannot resolve the registry in the sealed CI container, so this
# script drives `clippy-driver` (a rustc wrapper with clippy lints) over
# every workspace crate in dependency order, linking against the stub
# crates in devtools/stubs/ (rand / rand_chacha / serde / serde_json).
# Stubs are API look-alikes: deterministic PRNG, no-op serde derives,
# aborting serde_json — see devtools/stubs/*.rs headers. proptest and
# criterion have no stubs, so property-test files and criterion benches
# are compile-checked only by real CI, not here.
#
# Usage:
#   scripts/offline_check.sh check   # clippy -D warnings on all lib/bin targets
#   scripts/offline_check.sh test    # also build + run unit/integration tests
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-check}"
EDITION=2021
# env!("CARGO_PKG_VERSION") call sites need this in rustc's environment.
CARGO_PKG_VERSION=$(grep -m1 '^version' Cargo.toml | sed 's/.*"\(.*\)".*/\1/')
export CARGO_PKG_VERSION
OUT=target/offline
STUBS=$OUT/stubs
LIBS=$OUT/libs
BINS=$OUT/bins
TESTS=$OUT/tests
rm -rf "$OUT"
mkdir -p "$STUBS" "$LIBS" "$BINS" "$TESTS"

# Mirrors profile.test/profile.bench: optimized but with debug assertions.
# dead_code is allowed because the no-op serde derive stub drops references
# to `#[serde(default = "...")]` helper functions; real CI still denies it.
CODEGEN=(-C opt-level=2 -C debug-assertions=on -A dead_code)

say() { printf '\033[1m== %s\033[0m\n' "$*"; }

# ---------------------------------------------------------------- stubs --
say "stubs"
rustc --edition $EDITION --crate-type proc-macro --crate-name serde_derive \
    --cap-lints allow devtools/stubs/serde_derive.rs --out-dir "$STUBS"
rustc --edition $EDITION --crate-type lib --crate-name serde --cap-lints allow \
    --extern serde_derive="$STUBS/libserde_derive.so" \
    devtools/stubs/serde.rs --out-dir "$STUBS" "${CODEGEN[@]}"
rustc --edition $EDITION --crate-type lib --crate-name serde_json --cap-lints allow \
    --extern serde="$STUBS/libserde.rlib" -L "$STUBS" \
    devtools/stubs/serde_json.rs --out-dir "$STUBS" "${CODEGEN[@]}"
rustc --edition $EDITION --crate-type lib --crate-name rand --cap-lints allow \
    devtools/stubs/rand.rs --out-dir "$STUBS" "${CODEGEN[@]}"
rustc --edition $EDITION --crate-type lib --crate-name rand_chacha --cap-lints allow \
    --extern rand="$STUBS/librand.rlib" \
    devtools/stubs/rand_chacha.rs --out-dir "$STUBS" "${CODEGEN[@]}"

# Direct dependencies per crate (dev-deps appended for test builds).
deps_of() {
    case "$1" in
        bees_runtime | bees_telemetry) echo "" ;;
        bees_image) echo "bees_runtime rand rand_chacha serde" ;;
        bees_features) echo "bees_image bees_runtime rand rand_chacha serde" ;;
        bees_energy) echo "bees_features serde" ;;
        bees_net) echo "rand rand_chacha serde" ;;
        bees_submodular) echo "bees_runtime serde" ;;
        bees_index) echo "bees_features bees_runtime rand rand_chacha serde" ;;
        bees_datasets) echo "bees_image rand rand_chacha serde" ;;
        bees_store) echo "bees_image serde" ;;
        bees_core) echo "bees_image bees_features bees_index bees_energy bees_net \
                         bees_submodular bees_datasets bees_store bees_telemetry \
                         rand rand_chacha serde" ;;
        bees_bench) echo "bees_image bees_features bees_runtime bees_index bees_energy \
                          bees_net bees_submodular bees_datasets bees_store bees_core \
                          bees_telemetry rand rand_chacha" ;;
        bees) echo "bees_runtime bees_telemetry bees_image bees_features bees_index \
                    bees_energy bees_net bees_submodular bees_datasets bees_store \
                    bees_core" ;;
        *)
            echo "unknown crate $1" >&2
            exit 1
            ;;
    esac
}

dev_deps_of() {
    case "$1" in
        bees_index) echo "bees_image rand rand_chacha" ;;
        bees_submodular) echo "rand rand_chacha" ;;
        bees_datasets) echo "bees_features" ;;
        bees_net) echo "serde_json" ;;
        bees_core) echo "serde_json" ;;
        bees) echo "rand rand_chacha serde serde_json" ;;
        *) echo "" ;;
    esac
}

extern_flags() { # space-separated crate names -> --extern flags
    local flags=()
    for dep in $*; do
        case "$dep" in
            rand | rand_chacha | serde | serde_json)
                flags+=(--extern "$dep=$STUBS/lib$dep.rlib")
                ;;
            *) flags+=(--extern "$dep=$LIBS/lib$dep.rlib") ;;
        esac
    done
    echo "${flags[@]:-}"
}

CRATES="bees_runtime bees_telemetry bees_image bees_features bees_energy bees_net \
        bees_submodular bees_index bees_datasets bees_store bees_core bees_bench bees"

src_of() {
    case "$1" in
        bees) echo "src/lib.rs" ;;
        *) echo "crates/${1#bees_}/src/lib.rs" ;;
    esac
}

# ----------------------------------------------------------------- libs --
for crate in $CRATES; do
    say "lib $crate"
    # shellcheck disable=SC2046
    clippy-driver --edition $EDITION --crate-type lib --crate-name "$crate" \
        $(extern_flags $(deps_of "$crate")) -L "$STUBS" -L "$LIBS" \
        -D warnings "${CODEGEN[@]}" "$(src_of "$crate")" --out-dir "$LIBS"
done

# ----------------------------------------------------------------- bins --
say "bench bins"
BIN_EXTERNS=$(extern_flags bees_bench $(deps_of bees_bench))
for bin in crates/bench/src/bin/*.rs; do
    # shellcheck disable=SC2086
    clippy-driver --edition $EDITION --crate-type bin \
        --crate-name "bin_$(basename "$bin" .rs)" \
        $BIN_EXTERNS -L "$STUBS" -L "$LIBS" \
        -D warnings "${CODEGEN[@]}" "$bin" --out-dir "$BINS"
done

say "examples"
for ex in examples/*.rs; do
    # shellcheck disable=SC2086,SC2046
    clippy-driver --edition $EDITION --crate-type bin \
        --crate-name "ex_$(basename "$ex" .rs)" \
        $(extern_flags bees) -L "$STUBS" -L "$LIBS" \
        -D warnings "${CODEGEN[@]}" "$ex" --out-dir "$BINS"
done

if [ "$MODE" != test ]; then
    say "offline check passed (mode=check)"
    exit 0
fi

# ---------------------------------------------------------------- tests --
# Unit tests (lib targets with #[cfg(test)]). proptest-based suites live in
# tests/ directories and are excluded. Tests that require real serde_json
# are skipped by name; everything else runs.
skip_args() {
    case "$1" in
        # These serialize through serde_json, which the stub aborts on.
        bees_core) echo "--skip builder_round_trips_the_defaults \
                         --skip robustness_knobs_deserialize_with_defaults \
                         --skip robustness_fields_default_when_absent" ;;
        bees_net) echo "--skip policy_serializes_roundtrip" ;;
        *) echo "" ;;
    esac
}

for crate in $CRATES; do
    say "unit tests $crate"
    # shellcheck disable=SC2046
    rustc --edition $EDITION --test --crate-name "${crate}_unit" \
        $(extern_flags $(deps_of "$crate") $(dev_deps_of "$crate")) \
        -L "$STUBS" -L "$LIBS" "${CODEGEN[@]}" "$(src_of "$crate")" \
        -o "$TESTS/${crate}_unit"
    # shellcheck disable=SC2046
    "$TESTS/${crate}_unit" -q $(skip_args "$crate")
done

# Integration tests that don't need proptest. Each entry:
#   path [-- harness-args]
run_integration() {
    local name=$1 path=$2
    shift 2
    say "integration $name"
    # shellcheck disable=SC2046
    rustc --edition $EDITION --test --crate-name "$name" \
        $(extern_flags bees $(dev_deps_of bees)) \
        -L "$STUBS" -L "$LIBS" "${CODEGEN[@]}" "$path" -o "$TESTS/$name"
    "$TESTS/$name" -q "$@"
}

run_integration it_end_to_end tests/end_to_end.rs
run_integration it_approximate tests/approximate_pipeline.rs
run_integration it_retrieval tests/retrieval.rs
# JSON round-trip tests need real serde_json; the deterministic-report
# tests (including the fleet sweep) run here.
run_integration it_determinism tests/determinism.rs \
    --skip full_pipeline_is_identical_across_thread_counts \
    --skip fault_injected_pipeline_is_identical_across_thread_counts \
    --skip reports_serialize_and_roundtrip

say "features integration tests"
# shellcheck disable=SC2046
for t in crates/features/tests/*.rs; do
    name="feat_$(basename "$t" .rs)"
    if grep -q "use proptest" "$t"; then
        say "skip $name (proptest)"
        continue
    fi
    rustc --edition $EDITION --test --crate-name "$name" \
        $(extern_flags bees_features $(deps_of bees_features) $(dev_deps_of bees_features)) \
        -L "$STUBS" -L "$LIBS" "${CODEGEN[@]}" "$t" -o "$TESTS/$name"
    "$TESTS/$name" -q
done

say "image codec integration tests"
# shellcheck disable=SC2046
for t in crates/image/tests/*.rs; do
    name="img_$(basename "$t" .rs)"
    if grep -q "use proptest" "$t"; then
        say "skip $name (proptest)"
        continue
    fi
    rustc --edition $EDITION --test --crate-name "$name" \
        $(extern_flags bees_image $(deps_of bees_image) $(dev_deps_of bees_image)) \
        -L "$STUBS" -L "$LIBS" "${CODEGEN[@]}" "$t" -o "$TESTS/$name"
    "$TESTS/$name" -q
done

say "store integration tests"
# shellcheck disable=SC2046
for t in crates/store/tests/*.rs; do
    name="sto_$(basename "$t" .rs)"
    if grep -q "use proptest" "$t"; then
        say "skip $name (proptest)"
        continue
    fi
    rustc --edition $EDITION --test --crate-name "$name" \
        $(extern_flags bees_store $(deps_of bees_store) $(dev_deps_of bees_store)) \
        -L "$STUBS" -L "$LIBS" "${CODEGEN[@]}" "$t" -o "$TESTS/$name"
    "$TESTS/$name" -q
done

say "index integration tests"
# shellcheck disable=SC2046
for t in crates/index/tests/*.rs; do
    name="idx_$(basename "$t" .rs)"
    if grep -q "use proptest" "$t"; then
        say "skip $name (proptest)"
        continue
    fi
    rustc --edition $EDITION --test --crate-name "$name" \
        $(extern_flags bees_index $(deps_of bees_index) $(dev_deps_of bees_index)) \
        -L "$STUBS" -L "$LIBS" "${CODEGEN[@]}" "$t" -o "$TESTS/$name"
    "$TESTS/$name" -q
done

say "offline check passed (mode=test)"
