//! Integration tests of the Approximate Image Sharing stages across
//! crates: AFE (bitmap compression + ORB), ARD (EDR thresholds + SSMM),
//! and AIU (resolution + quality compression) behave as the paper claims.

use bees::datasets::{Scene, SceneConfig, ViewJitter};
use bees::energy::{AdaptiveScheme, LinearScheme};
use bees::features::orb::Orb;
use bees::features::similarity::{jaccard_similarity, SimilarityConfig};
use bees::features::FeatureExtractor;
use bees::image::{codec, metrics, resize};
use bees::submodular::{SimilarityGraph, Ssmm, SsmmConfig};

fn scene_pair(seed: u64) -> (bees::image::GrayImage, bees::image::GrayImage) {
    let scene = Scene::new(seed, SceneConfig::default());
    let views = scene.render_views(seed + 1, 2);
    (views[0].to_gray(), views[1].to_gray())
}

#[test]
fn afe_compression_preserves_similarity_ranking() {
    // The Fig. 3 claim is about *precision* (ranking), not absolute
    // scores: under every EAC compression level the battery can choose, a
    // compressed query must still score its true partner above unrelated
    // scenes. Absolute scores do attenuate with C — that is the "slight
    // loss in detection precision" the paper trades for energy.
    let orb = Orb::default();
    let cfg = SimilarityConfig::default();
    let pairs: Vec<_> = (0..5u64).map(|s| scene_pair(10 + s)).collect();
    let partners: Vec<_> = pairs.iter().map(|(_, p)| orb.extract(p)).collect();
    let strangers: Vec<_> = (0..3u64)
        .map(|s| {
            let (img, _) = scene_pair(100 + s);
            orb.extract(&img)
        })
        .collect();
    for (ebat, allowed_failures) in [(1.0, 0usize), (0.5, 1), (0.05, 2)] {
        let c = LinearScheme::eac().value(ebat);
        let mut failures = 0usize;
        for ((a, _), f_partner) in pairs.iter().zip(&partners) {
            let compressed = resize::compress_bitmap(a, c).unwrap();
            let query = orb.extract(&compressed);
            let to_partner = jaccard_similarity(&query, f_partner, &cfg);
            let beats_all = strangers
                .iter()
                .all(|s| to_partner > jaccard_similarity(&query, s, &cfg));
            if !beats_all {
                failures += 1;
            }
        }
        assert!(
            failures <= allowed_failures,
            "Ebat {ebat} (C = {c}): ranking failed on {failures}/{} scenes",
            pairs.len()
        );
    }
}

#[test]
fn edr_threshold_still_separates_at_every_battery_level() {
    // The threshold band [T(0), T(1)] must sit between the dissimilar and
    // similar score populations.
    let orb = Orb::default();
    let cfg = SimilarityConfig::default();
    let edr = bees::core::BeesConfig::default().edr;
    let (a1, a2) = scene_pair(20);
    let (b1, _) = scene_pair(21);
    let similar = jaccard_similarity(&orb.extract(&a1), &orb.extract(&a2), &cfg);
    let dissimilar = jaccard_similarity(&orb.extract(&a1), &orb.extract(&b1), &cfg);
    for ebat in [0.0, 0.3, 0.7, 1.0] {
        let t = edr.value(ebat);
        assert!(similar > t, "Ebat {ebat}: similar {similar} <= T {t}");
        assert!(
            dissimilar < t,
            "Ebat {ebat}: dissimilar {dissimilar} >= T {t}"
        );
    }
}

#[test]
fn ssmm_budget_shrinks_with_battery() {
    // Lower Ebat -> lower Tw -> more images in each subgraph -> smaller
    // summaries (more elimination), the EDR story applied in-batch.
    let orb = Orb::default();
    let cfg = SimilarityConfig::default();
    let scene_cfg = SceneConfig {
        width: 128,
        height: 96,
        n_shapes: 12,
        texture_amp: 8.0,
    };
    // Six images: three pairs of views.
    let mut features = Vec::new();
    for s in 0..3u64 {
        let scene = Scene::new(30 + s, scene_cfg);
        for img in scene.render_views(s, 2) {
            features.push(orb.extract(&img.to_gray()));
        }
    }
    let graph = SimilarityGraph::from_pairwise(features.len(), |i, j| {
        jaccard_similarity(&features[i], &features[j], &cfg)
    });
    let ssmm = Ssmm::new(SsmmConfig::default());
    let tw = bees::core::BeesConfig::default().tw;
    let low = ssmm.summarize(&graph, tw.value(0.0));
    let high = ssmm.summarize(&graph, tw.value(1.0));
    assert!(low.budget <= high.budget);
    // The three view-pairs must collapse to three representatives.
    assert_eq!(low.budget, 3, "partitions: {:?}", low.partitions);
    assert_eq!(low.selected.len(), 3);
}

#[test]
fn aiu_trades_ssim_for_bytes_monotonically() {
    let img = Scene::new(40, SceneConfig::default()).render(&ViewJitter::identity());
    let gray = img.to_gray();
    let mut last_bytes = usize::MAX;
    for (proportion, min_ssim) in [(0.1, 0.85), (0.5, 0.7), (0.85, 0.5)] {
        let q = bees::core::BeesConfig::quality_for_proportion(proportion);
        let encoded = codec::encode_rgb(&img, q).unwrap();
        let decoded = codec::decode_rgb(&encoded).unwrap();
        let ssim = metrics::ssim(&gray, &decoded.to_gray()).unwrap();
        assert!(
            encoded.len() <= last_bytes,
            "bytes must shrink at proportion {proportion}"
        );
        assert!(
            ssim > min_ssim,
            "ssim {ssim} too low at proportion {proportion}"
        );
        last_bytes = encoded.len();
    }
}

#[test]
fn eau_resolution_tracks_battery() {
    let img = Scene::new(41, SceneConfig::default()).render(&ViewJitter::identity());
    let eau = LinearScheme::eau();
    let mut last_pixels = usize::MAX;
    for ebat in [1.0, 0.6, 0.2, 0.0] {
        let cr = eau.value(ebat);
        let shrunk = resize::compress_resolution_rgb(&img, cr).unwrap();
        assert!(shrunk.pixel_count() <= last_pixels, "Ebat {ebat}");
        last_pixels = shrunk.pixel_count();
    }
    // The paper's example: even at 5% battery the image keeps >= (1-0.8)^2
    // of its pixels.
    let cr = eau.value(0.05);
    let shrunk = resize::compress_resolution_rgb(&img, cr).unwrap();
    assert!(shrunk.pixel_count() as f64 >= 0.03 * img.pixel_count() as f64);
}

#[test]
fn server_side_extraction_matches_client_side() {
    // CBRD only works because both sides extract comparable features; the
    // preloaded (server-extracted) features must match a client query of a
    // similar view.
    use bees::core::{BeesConfig, RetrievalQuery, Server};
    let config = BeesConfig::default();
    let mut server = Server::try_new(&config).unwrap();
    let scene = Scene::new(50, SceneConfig::default());
    server.preload(bees::core::PreloadBatch::new(&[scene.render(
        &ViewJitter::identity(),
    )]));
    let other_view = scene.render(&ViewJitter {
        dx: 3.0,
        dy: -2.0,
        brightness: 8,
        ..ViewJitter::identity()
    });
    let orb = Orb::new(config.orb);
    let query = orb.extract(&other_view.to_gray());
    let result = server.answer(&RetrievalQuery::new().similar_to(&query).top_k(1));
    let hit = result.hits.first().expect("indexed image");
    assert!(
        hit.score > config.edr.value(1.0),
        "similarity {}",
        hit.score
    );
}
