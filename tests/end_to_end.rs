//! End-to-end integration tests: every scheme drives the full
//! client/server stack over the simulated network on synthetic data.

use bees::core::schemes::{
    BatchCtx, Bees, DirectUpload, Mrc, PhotoNetLike, SmartEye, UploadScheme,
};
use bees::core::{BeesConfig, Client, Server};
use bees::datasets::{disaster_batch, DisasterBatch, SceneConfig};
use bees::energy::EnergyCategory;
use bees::net::BandwidthTrace;

fn test_config() -> BeesConfig {
    let mut c = BeesConfig::default();
    c.trace = BandwidthTrace::constant(256_000.0).expect("constant trace");
    c
}

fn small_scene() -> SceneConfig {
    SceneConfig {
        width: 128,
        height: 96,
        n_shapes: 12,
        texture_amp: 8.0,
    }
}

fn workload(seed: u64) -> DisasterBatch {
    // Comparative assertions need realistic image sizes: with tiny scenes
    // the stored camera files shrink to the size of a feature payload and
    // the paper's proportions no longer hold.
    disaster_batch(seed, 12, 2, 0.25, SceneConfig::default())
}

fn all_schemes(config: &BeesConfig) -> Vec<Box<dyn UploadScheme>> {
    vec![
        Box::new(DirectUpload::new(config)),
        Box::new(PhotoNetLike::new(config)),
        Box::new(SmartEye::new(config)),
        Box::new(Mrc::new(config)),
        Box::new(Bees::without_adaptation(config)),
        Box::new(Bees::adaptive(config)),
    ]
}

#[test]
fn every_scheme_conserves_the_batch() {
    let config = test_config();
    let data = workload(1);
    for scheme in all_schemes(&config) {
        let mut server = Server::try_new(&config).unwrap();
        scheme.preload_server(&mut server, &data.server_preload);
        let mut client = Client::try_new(0, &config).unwrap();
        let r = scheme
            .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
            .unwrap();
        assert_eq!(
            r.uploaded_images + r.skipped_cross_batch + r.skipped_in_batch,
            r.batch_size,
            "{}: conservation violated",
            r.scheme
        );
        assert_eq!(server.received_images(), r.uploaded_images, "{}", r.scheme);
        assert!(!r.exhausted);
        assert!(r.total_delay_s > 0.0, "{}", r.scheme);
        assert!(r.active_energy() > 0.0, "{}", r.scheme);
        assert!(r.uplink_bytes > 0, "{}", r.scheme);
    }
}

#[test]
fn battery_drain_matches_ledger() {
    let config = test_config();
    let data = workload(2);
    for scheme in all_schemes(&config) {
        let mut server = Server::try_new(&config).unwrap();
        scheme.preload_server(&mut server, &data.server_preload);
        let mut client = Client::try_new(0, &config).unwrap();
        let before = client.battery().remaining_joules();
        let r = scheme
            .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
            .unwrap();
        let after = client.battery().remaining_joules();
        assert!(
            (before - after - r.energy.total()).abs() < 1e-6,
            "{}: drained {} but ledger says {}",
            r.scheme,
            before - after,
            r.energy.total()
        );
    }
}

#[test]
fn uploaded_features_enable_future_deduplication() {
    // Phone A uploads a batch through BEES; phone B uploading the same
    // scenes afterwards should see almost everything as cross-batch
    // redundant.
    let config = test_config();
    let data = workload(3);
    let scheme = Bees::adaptive(&config);
    let mut server = Server::try_new(&config).unwrap();
    let mut phone_a = Client::try_new(0, &config).unwrap();
    let ra = scheme
        .upload(&mut BatchCtx::new(&mut phone_a, &mut server, &data.batch))
        .unwrap();
    assert!(ra.uploaded_images > 0);
    let mut phone_b = Client::try_new(1, &config).unwrap();
    let rb = scheme
        .upload(&mut BatchCtx::new(&mut phone_b, &mut server, &data.batch))
        .unwrap();
    assert!(
        rb.uploaded_images < ra.uploaded_images,
        "second phone should deduplicate: {} vs {}",
        rb.uploaded_images,
        ra.uploaded_images
    );
}

#[test]
fn bees_beats_direct_on_every_headline_metric() {
    let config = test_config();
    let data = workload(4);

    let mut server_d = Server::try_new(&config).unwrap();
    let mut client_d = Client::try_new(0, &config).unwrap();
    let rd = DirectUpload::new(&config)
        .upload(&mut BatchCtx::new(
            &mut client_d,
            &mut server_d,
            &data.batch,
        ))
        .unwrap();

    let scheme = Bees::adaptive(&config);
    let mut server_b = Server::try_new(&config).unwrap();
    scheme.preload_server(&mut server_b, &data.server_preload);
    let mut client_b = Client::try_new(0, &config).unwrap();
    let rb = scheme
        .upload(&mut BatchCtx::new(
            &mut client_b,
            &mut server_b,
            &data.batch,
        ))
        .unwrap();

    assert!(rb.active_energy() < rd.active_energy(), "energy");
    assert!(rb.bandwidth_bytes() < rd.bandwidth_bytes(), "bandwidth");
    assert!(rb.avg_delay_per_image() < rd.avg_delay_per_image(), "delay");
}

#[test]
fn in_batch_duplicates_are_eliminated_without_server_knowledge() {
    // A batch whose only redundancy is internal: the server index is empty,
    // so only SSMM can catch it.
    let config = test_config();
    let data = disaster_batch(5, 10, 3, 0.0, small_scene());
    let scheme = Bees::adaptive(&config);
    let mut server = Server::try_new(&config).unwrap();
    let mut client = Client::try_new(0, &config).unwrap();
    let r = scheme
        .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
        .unwrap();
    assert_eq!(r.skipped_cross_batch, 0, "server was empty");
    assert!(
        r.skipped_in_batch >= 2,
        "staged 3 in-batch duplicates, eliminated {}",
        r.skipped_in_batch
    );
    // MRC cannot catch them.
    let mrc = Mrc::new(&config);
    let mut server2 = Server::try_new(&config).unwrap();
    let mut client2 = Client::try_new(0, &config).unwrap();
    let rm = mrc
        .upload(&mut BatchCtx::new(&mut client2, &mut server2, &data.batch))
        .unwrap();
    assert_eq!(rm.skipped_in_batch, 0);
    assert!(rm.uploaded_images > r.uploaded_images);
}

#[test]
fn fluctuating_trace_still_completes() {
    let mut config = test_config();
    config.trace = BandwidthTrace::fluctuating(9, 64_000.0, 512_000.0, 2.0).unwrap();
    let data = workload(6);
    let scheme = Bees::adaptive(&config);
    let mut server = Server::try_new(&config).unwrap();
    let mut client = Client::try_new(0, &config).unwrap();
    let r = scheme
        .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
        .unwrap();
    assert!(!r.exhausted);
    assert!(r.total_delay_s > 0.0);
}

#[test]
fn dead_network_surfaces_as_an_error_not_a_hang() {
    // A trace stuck at 0 bps: every scheme must propagate the stall as an
    // error (simulated time hits the channel's stall limit instantly in
    // wall-clock terms) rather than panicking or spinning.
    let mut config = test_config();
    config.trace = BandwidthTrace::constant(0.0).unwrap();
    let data = disaster_batch(8, 4, 0, 0.0, small_scene());
    for scheme in all_schemes(&config) {
        let mut server = Server::try_new(&config).unwrap();
        let mut client = Client::try_new(0, &config).unwrap();
        let result = scheme.upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch));
        assert!(
            matches!(result, Err(bees::core::CoreError::Net(_))),
            "{:?} should stall",
            scheme.kind()
        );
    }
}

#[test]
fn energy_categories_are_scheme_appropriate() {
    let config = test_config();
    let data = workload(7);
    let mut server = Server::try_new(&config).unwrap();
    let mut client = Client::try_new(0, &config).unwrap();
    let rd = DirectUpload::new(&config)
        .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
        .unwrap();
    assert_eq!(rd.energy.get(EnergyCategory::FeatureExtraction), 0.0);
    assert_eq!(rd.energy.get(EnergyCategory::Compression), 0.0);

    let scheme = Bees::adaptive(&config);
    let mut server2 = Server::try_new(&config).unwrap();
    let mut client2 = Client::try_new(0, &config).unwrap();
    let rb = scheme
        .upload(&mut BatchCtx::new(&mut client2, &mut server2, &data.batch))
        .unwrap();
    assert!(rb.energy.get(EnergyCategory::FeatureExtraction) > 0.0);
    assert!(rb.energy.get(EnergyCategory::Compression) > 0.0);
    assert!(rb.energy.get(EnergyCategory::FeatureUpload) > 0.0);
}
