//! End-to-end retrieval: a fleet uploads (and defers) under a lossy
//! shared cell, then responders query the unified surface — geo radius,
//! time windows, and the on-device catalog — against the final server.

use bees::core::schemes::Bees;
use bees::core::sessions::{run_fleet_with_server, FleetConfig, FleetReport, PulldownConfig};
use bees::core::{BeesConfig, Provenance, RetrievalQuery, Server};
use bees::datasets::SceneConfig;
use bees::net::BandwidthTrace;
use bees::telemetry::Telemetry;

fn config() -> BeesConfig {
    let mut c = BeesConfig::default();
    c.trace = BandwidthTrace::constant(256_000.0).unwrap();
    c.battery = bees::energy::Battery::from_joules(1e9);
    c.cell.enabled = true;
    c.cell.capacity = BandwidthTrace::constant(48_000.0).unwrap();
    c.cell.epoch_s = 20.0;
    c.fault = bees::net::FaultModel::new(0x9E11, 0.7, 0.0, 1e9, 1.0).unwrap();
    c.retry.max_attempts = 2;
    c.retry.chunk_bytes = 256;
    c
}

fn fleet(pulldown: Option<PulldownConfig>) -> FleetConfig {
    FleetConfig {
        n_devices: 6,
        rounds: 2,
        group_size: 4,
        shared_per_group: 2,
        interval_s: 30.0,
        scene: SceneConfig {
            width: 96,
            height: 72,
            n_shapes: 8,
            texture_amp: 8.0,
        },
        seed: 11,
        pulldown,
    }
}

fn run(pulldown: Option<PulldownConfig>) -> (FleetReport, Server) {
    let cfg = config();
    run_fleet_with_server(
        &Bees::adaptive(&cfg),
        &cfg,
        &fleet(pulldown),
        &Telemetry::disabled(),
    )
    .unwrap()
}

#[test]
fn geo_queries_return_ranked_geotagged_hits() {
    let (_, mut server) = run(None);
    let result = server.answer(&RetrievalQuery::new().near(0.0, 0.0, 5.0));
    assert!(!result.hits.is_empty(), "the fleet uploaded near the sites");
    assert!(result.candidates_considered >= result.hits.len());
    for pair in result.hits.windows(2) {
        assert!(
            pair[0].score > pair[1].score
                || (pair[0].score == pair[1].score && pair[0].id < pair[1].id),
            "hits must be ranked by score desc, id asc: {pair:?}"
        );
    }
    for hit in &result.hits {
        let geo = hit.geotag.expect("cell-mode uploads carry geotags");
        assert!(
            bees::core::retrieval::haversine_km((0.0, 0.0), geo) <= 5.0,
            "hit outside the radius: {hit:?}"
        );
        assert!(hit.time_s.is_some(), "fleet ingests are timestamped");
    }
    // A half-kilometre radius isolates the lattice site at the origin:
    // every hit sits exactly there.
    let tight = server.answer(&RetrievalQuery::new().near(0.0, 0.0, 0.5));
    for hit in &tight.hits {
        assert_eq!(hit.geotag, Some((0.0, 0.0)), "{hit:?}");
    }
    assert!(tight.hits.len() <= result.hits.len());
}

#[test]
fn time_windows_slice_the_run() {
    let (_, mut server) = run(None);
    let all = server.answer(&RetrievalQuery::new().within_time(0.0, 1e9));
    assert!(!all.hits.is_empty());
    // Ids break ties for the pure time-window ranking (every score is
    // equal), so the full window enumerates in id order.
    for pair in all.hits.windows(2) {
        assert!(pair[0].id < pair[1].id, "{pair:?}");
    }
    let early = server.answer(&RetrievalQuery::new().within_time(0.0, 30.0));
    assert!(early.hits.len() < all.hits.len());
    for hit in &early.hits {
        let t = hit.time_s.expect("time-window hits are timestamped");
        assert!((0.0..=30.0).contains(&t), "{hit:?}");
    }
}

#[test]
fn on_device_catalog_is_opt_in_and_shrinks_to_the_denied_set() {
    let (report, mut server) = run(Some(PulldownConfig::default()));
    assert!(
        report.pulldown_requests > 0,
        "lossy cell must defer: {report:?}"
    );
    assert_eq!(
        report.pulldown_requests,
        report.pulldown_fulfilled + report.pulldown_denied
    );
    // The default sweep radius covers every lattice site, so what remains
    // cataloged after the run is exactly the denied set.
    assert_eq!(server.on_device_images().len(), report.pulldown_denied);

    let base = server.answer(&RetrievalQuery::new().near(0.0, 0.0, 5.0));
    let with_catalog = server.answer(
        &RetrievalQuery::new()
            .near(0.0, 0.0, 5.0)
            .include_on_device(true),
    );
    assert!(
        base.hits
            .iter()
            .all(|h| !matches!(h.provenance, Provenance::OnDevice { .. })),
        "catalog entries must stay invisible without the opt-in"
    );
    let on_device = with_catalog
        .hits
        .iter()
        .filter(|h| matches!(h.provenance, Provenance::OnDevice { .. }))
        .count();
    assert_eq!(with_catalog.hits.len(), base.hits.len() + on_device);
    assert_eq!(with_catalog.on_device_matches, on_device);
    assert!(on_device <= report.pulldown_denied);
}

#[test]
fn pulldown_strictly_improves_recall_for_bounded_extra_cost() {
    let (without, _) = run(None);
    let (with, _) = run(Some(PulldownConfig::default()));
    assert_eq!(
        with.images_uploaded,
        without.images_uploaded + with.pulldown_fulfilled,
        "each fulfilled fetch is one more image the server holds"
    );
    if with.pulldown_fulfilled > 0 {
        assert!(with.pulldown_bytes > 0);
        assert!(with.pulldown_joules > 0.0);
        // The fetches are accounted, not free — and bounded by what was
        // actually moved.
        assert!(with.energy_spent_j > without.energy_spent_j);
        assert!(with.uplink_bytes >= without.uplink_bytes + with.pulldown_bytes);
    }
}

#[test]
fn repeated_queries_are_stable_and_counted() {
    let (_, mut server) = run(None);
    let before = server.queries_served();
    let q = RetrievalQuery::new().near(0.0, 0.0, 5.0).top_k(3);
    let a = server.answer(&q).to_json();
    let b = server.answer(&q).to_json();
    assert_eq!(a, b, "retrieval must be a pure function of server state");
    assert_eq!(server.queries_served(), before + 2);
}
