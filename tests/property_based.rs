//! Property-based tests (proptest) on the core invariants spanning crates.

use bees::core::retrieval::haversine_km;
use bees::core::{BeesConfig, RetrievalQuery, Server};
use bees::energy::{AdaptiveScheme, Battery, EnergyLedger, LinearScheme};
use bees::features::descriptor::BinaryDescriptor;
use bees::features::matcher::{match_binary, MatchConfig};
use bees::features::similarity::{jaccard_similarity, SimilarityConfig};
use bees::features::{Descriptors, ImageFeatures, Keypoint};
use bees::image::{codec, GrayImage};
use bees::net::{BandwidthTrace, Channel};
use bees::submodular::{partition_by_threshold, SimilarityGraph, Ssmm, SsmmConfig};
use proptest::prelude::*;

fn arb_gray_image() -> impl Strategy<Value = GrayImage> {
    ((8u32..64), (8u32..48), any::<u64>()).prop_map(|(w, h, seed)| {
        GrayImage::from_fn(w, h, |x, y| {
            let v = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add((x as u64) << 32 | y as u64)
                .wrapping_mul(1442695040888963407);
            (v >> 56) as u8
        })
    })
}

fn arb_descriptors(max: usize) -> impl Strategy<Value = Vec<BinaryDescriptor>> {
    proptest::collection::vec(any::<[u8; 32]>(), 0..max)
        .prop_map(|v| v.into_iter().map(BinaryDescriptor::from_bytes).collect())
}

fn features(descs: Vec<BinaryDescriptor>) -> ImageFeatures {
    ImageFeatures {
        keypoints: descs.iter().map(|_| Keypoint::default()).collect(),
        descriptors: Descriptors::Binary(descs),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn codec_roundtrip_preserves_dimensions_and_bounds(img in arb_gray_image(), q in 1u8..=100) {
        let encoded = codec::encode_gray(&img, q).unwrap();
        let decoded = codec::decode_gray(&encoded).unwrap();
        prop_assert_eq!(decoded.dimensions(), img.dimensions());
        // High quality must be nearly lossless.
        if q >= 95 {
            let err = bees::image::metrics::mse(&img, &decoded).unwrap();
            prop_assert!(err < 400.0, "mse {} at q {}", err, q);
        }
    }

    #[test]
    fn codec_decoding_never_panics_on_corruption(img in arb_gray_image(), flip in any::<(usize, u8)>()) {
        let mut encoded = codec::encode_gray(&img, 50).unwrap();
        if !encoded.is_empty() {
            let idx = flip.0 % encoded.len();
            encoded[idx] ^= flip.1 | 1;
        }
        // Must return Ok or Err, never panic.
        let _ = codec::decode_gray(&encoded);
    }

    #[test]
    fn jaccard_is_bounded_and_symmetric(a in arb_descriptors(30), b in arb_descriptors(30)) {
        let fa = features(a);
        let fb = features(b);
        let cfg = SimilarityConfig::default();
        let s1 = jaccard_similarity(&fa, &fb, &cfg);
        let s2 = jaccard_similarity(&fb, &fa, &cfg);
        prop_assert!((0.0..=1.0).contains(&s1));
        prop_assert!((s1 - s2).abs() < 1e-12);
        // Self-similarity of a non-empty set is 1.
        if !fa.is_empty() {
            prop_assert!((jaccard_similarity(&fa, &fa, &cfg) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cross_checked_matches_are_one_to_one(a in arb_descriptors(25), b in arb_descriptors(25)) {
        let cfg = MatchConfig::default();
        let matches = match_binary(&a, &b, &cfg);
        let mut q: Vec<usize> = matches.iter().map(|m| m.query_idx).collect();
        let mut t: Vec<usize> = matches.iter().map(|m| m.train_idx).collect();
        let (ql, tl) = (q.len(), t.len());
        q.sort_unstable();
        q.dedup();
        t.sort_unstable();
        t.dedup();
        prop_assert_eq!(q.len(), ql, "duplicate query index");
        prop_assert_eq!(t.len(), tl, "duplicate train index");
    }

    #[test]
    fn partition_count_is_monotone_in_threshold(
        n in 2usize..12,
        seed in any::<u64>(),
        t1 in 0.0f64..1.0,
        t2 in 0.0f64..1.0,
    ) {
        let g = SimilarityGraph::from_pairwise(n, |i, j| {
            let h = seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((i * 31 + j) as u64)
                .wrapping_mul(0xBF58476D1CE4E5B9);
            ((h >> 11) as f64 / (1u64 << 53) as f64).min(1.0)
        });
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        prop_assert!(partition_by_threshold(&g, lo).len() <= partition_by_threshold(&g, hi).len());
    }

    #[test]
    fn ssmm_summary_obeys_budget_and_uniqueness(n in 1usize..14, seed in any::<u64>(), tw in 0.0f64..1.0) {
        let g = SimilarityGraph::from_pairwise(n, |i, j| {
            let h = seed.wrapping_add((i * 131 + j * 17) as u64).wrapping_mul(0x94D049BB133111EB);
            ((h >> 11) as f64 / (1u64 << 53) as f64).min(1.0)
        });
        let s = Ssmm::new(SsmmConfig::default()).summarize(&g, tw);
        prop_assert!(s.selected.len() <= s.budget);
        prop_assert!(s.budget <= n);
        let mut sel = s.selected.clone();
        sel.sort_unstable();
        sel.dedup();
        prop_assert_eq!(sel.len(), s.selected.len(), "duplicate selections");
        // Every partition with a member selected is represented at most...
        // and the union of partitions is the ground set.
        let covered: usize = s.partitions.iter().map(|p| p.len()).sum();
        prop_assert_eq!(covered, n);
    }

    #[test]
    fn transfer_duration_is_monotone_in_bytes(seed in any::<u64>(), b1 in 0usize..200_000, b2 in 0usize..200_000) {
        let ch = Channel::new(BandwidthTrace::fluctuating(seed, 32_000.0, 512_000.0, 2.0).unwrap());
        let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        let d_lo = ch.transfer_duration(0.0, lo).unwrap();
        let d_hi = ch.transfer_duration(0.0, hi).unwrap();
        prop_assert!(d_lo <= d_hi + 1e-9);
    }

    #[test]
    fn resumable_transfer_completes_or_errors_with_monotone_ledger(
        seed in any::<u64>(),
        drop_p in 0.0f64..0.9,
        payloads in proptest::collection::vec(1usize..100_000, 1..6),
    ) {
        use bees::core::{BeesConfig, Client, CoreError};
        use bees::energy::EnergyCategory;
        use bees::net::{FaultModel, NetError};

        let mut config = BeesConfig::default();
        config.trace = BandwidthTrace::constant(256_000.0).unwrap();
        config.fault = FaultModel::new(seed, drop_p, 0.2, 20.0, 6.0).unwrap();
        config.battery = Battery::from_joules(1e9);
        let mut client = Client::try_new(0, &config).unwrap();
        let mut last_total = 0.0f64;
        let mut last_battery = client.battery().remaining_joules();
        for bytes in payloads {
            match client.transmit_resumable(EnergyCategory::ImageUpload, bytes) {
                // Either every byte is confirmed...
                Ok(summary) => prop_assert_eq!(summary.delivered_bytes, bytes),
                // ...or the typed retry-exhaustion error reports a strict
                // partial delivery.
                Err(CoreError::Net(NetError::RetriesExhausted {
                    delivered_bytes, total_bytes, ..
                })) => {
                    prop_assert!(delivered_bytes < total_bytes);
                    prop_assert_eq!(total_bytes, bytes);
                }
                Err(other) => prop_assert!(false, "unexpected error: {other}"),
            }
            // Energy only accrues and the battery only drains, success or not.
            let total = client.ledger().total();
            let battery = client.battery().remaining_joules();
            prop_assert!(total >= last_total - 1e-9, "ledger went backwards");
            prop_assert!(battery <= last_battery + 1e-9, "battery recharged itself");
            last_total = total;
            last_battery = battery;
        }
    }

    #[test]
    fn faulty_channel_progress_is_monotone_across_retries(
        seed in any::<u64>(),
        drop_p in 0.0f64..1.0,
        bytes in 1usize..200_000,
    ) {
        use bees::net::{FaultModel, FaultyChannel};

        let trace = BandwidthTrace::fluctuating(seed ^ 0xABCD, 32_000.0, 512_000.0, 2.0).unwrap();
        let ch = Channel::new(trace).with_stall_limit(60.0).unwrap();
        let faults = FaultModel::new(seed, drop_p, 0.3, 15.0, 5.0).unwrap();
        let mut fc = FaultyChannel::new(ch, faults);
        let mut now = 0.0f64;
        let mut remaining = bytes;
        for _ in 0..32 {
            let out = fc.transfer(now, remaining, Some(10.0));
            prop_assert!(out.delivered_bytes <= remaining, "over-delivered");
            prop_assert!(out.elapsed_s >= 0.0);
            prop_assert!(
                out.active_airtime_s <= out.elapsed_s + 1e-9,
                "airtime {} exceeds elapsed {}",
                out.active_airtime_s,
                out.elapsed_s
            );
            remaining -= out.delivered_bytes;
            now += out.elapsed_s + 1.0;
            if out.completed() {
                prop_assert_eq!(remaining, 0, "completed with bytes left over");
                break;
            }
        }
    }

    #[test]
    fn battery_never_goes_negative(capacity in 1.0f64..1000.0, drains in proptest::collection::vec(0.0f64..500.0, 0..20)) {
        let mut b = Battery::from_joules(capacity);
        for d in drains {
            b.drain(d);
            prop_assert!(b.remaining_joules() >= 0.0);
            prop_assert!(b.fraction() >= 0.0 && b.fraction() <= 1.0);
        }
    }

    #[test]
    fn linear_schemes_respect_clamps(ebat in -1.0f64..2.0) {
        for scheme in [LinearScheme::eac(), LinearScheme::eau(), LinearScheme::edr(0.1, 0.05)] {
            let v = scheme.value(ebat);
            prop_assert!(v >= scheme.min && v <= scheme.max);
        }
    }

    #[test]
    fn ledger_total_equals_sum_of_categories(amounts in proptest::collection::vec((0u8..7, 0.0f64..100.0), 0..30)) {
        use bees::energy::EnergyCategory;
        let mut ledger = EnergyLedger::new();
        let mut expected = 0.0;
        for (c, j) in amounts {
            ledger.record(EnergyCategory::ALL[c as usize], j);
            expected += j;
        }
        prop_assert!((ledger.total() - expected).abs() < 1e-9);
    }

    #[test]
    fn haversine_is_symmetric_bounded_and_zero_on_identity(
        lon_a in -180.0f64..180.0, lat_a in -90.0f64..90.0,
        lon_b in -180.0f64..180.0, lat_b in -90.0f64..90.0,
    ) {
        let a = (lon_a, lat_a);
        let b = (lon_b, lat_b);
        let d_ab = haversine_km(a, b);
        let d_ba = haversine_km(b, a);
        prop_assert!(d_ab.is_finite() && d_ab >= 0.0);
        prop_assert!((d_ab - d_ba).abs() < 1e-9, "asymmetric: {} vs {}", d_ab, d_ba);
        // Half the great circle is the farthest two points can be.
        prop_assert!(d_ab <= std::f64::consts::PI * 6371.0088 + 1e-6);
        prop_assert!(haversine_km(a, a) < 1e-9);
    }

    #[test]
    fn haversine_handles_antimeridian_and_poles(
        lat in -85.0f64..85.0, lon in -180.0f64..180.0, eps in 0.0f64..0.25,
    ) {
        // Wrapping the antimeridian is a short hop, not a lap around the
        // globe: ±(180 − ε) at the same latitude are 2ε of longitude apart.
        let east = (180.0 - eps, lat);
        let west = (-(180.0 - eps), lat);
        let wrapped = haversine_km(east, west);
        let local = haversine_km((0.0 - eps, lat), (0.0 + eps, lat));
        prop_assert!((wrapped - local).abs() < 1e-6, "wrap {} vs local {}", wrapped, local);
        // A full revolution of longitude is the same point.
        prop_assert!(haversine_km((lon, lat), (lon + 360.0, lat)) < 1e-6);
        // Every longitude at a pole is the same point; pole to pole is half
        // the great circle.
        prop_assert!(haversine_km((lon, 90.0), (0.0, 90.0)) < 1e-6);
        let pole_to_pole = haversine_km((lon, 90.0), (lon, -90.0));
        prop_assert!((pole_to_pole - std::f64::consts::PI * 6371.0088).abs() < 1e-6);
    }

    #[test]
    fn radius_zero_matches_exactly_the_query_point(
        lon in -180.0f64..180.0, lat in -85.0f64..85.0,
        dlon in 0.001f64..1.0, dlat in 0.001f64..1.0,
    ) {
        let q = RetrievalQuery::new().near(lon, lat, 0.0);
        prop_assert!(q.passes_filters(Some((lon, lat)), None));
        prop_assert!(!q.passes_filters(Some((lon + dlon, lat)), None));
        prop_assert!(!q.passes_filters(Some((lon, (lat + dlat).min(89.9))), None));
        prop_assert!(!q.passes_filters(None, None));
    }

    #[test]
    fn composed_retrieval_equals_sequential_filtering(
        sets in proptest::collection::vec(arb_descriptors(16), 2..8),
        geos in proptest::collection::vec((-170.0f64..170.0, -80.0f64..80.0), 8),
        times in proptest::collection::vec(0.0f64..100.0, 8),
        radius_km in 100.0f64..8000.0,
        t_lo in 0.0f64..50.0,
        span in 0.0f64..60.0,
    ) {
        // Composing geo + time + similarity in one RetrievalQuery must
        // return exactly what querying by similarity alone and then
        // filtering hit by hit returns, in the same order.
        let config = BeesConfig::default();
        let mut server = Server::try_new(&config).unwrap();
        let mut side = Vec::new();
        for (i, descs) in sets.iter().enumerate() {
            let geo = geos[i % geos.len()];
            let t = times[i % times.len()];
            server.set_time(t);
            server.ingest(
                bees::core::IngestRequest::full(1000)
                    .with_features(features(descs.clone()))
                    .with_geotag(geo),
            );
            side.push((geo, t));
        }
        let probe = features(sets[0].clone());
        let center = geos[0];
        let (t0, t1) = (t_lo, t_lo + span);

        let composed = server.answer(
            &RetrievalQuery::new()
                .near(center.0, center.1, radius_km)
                .within_time(t0, t1)
                .similar_to(&probe),
        );
        let unfiltered = server.answer(&RetrievalQuery::new().similar_to(&probe));
        let sequential: Vec<_> = unfiltered
            .hits
            .iter()
            .filter(|h| {
                let (geo, t) = side[h.id.0 as usize];
                haversine_km(center, geo) <= radius_km && t >= t0 && t <= t1
            })
            .map(|h| (h.id, h.score))
            .collect();
        let composed_pairs: Vec<_> =
            composed.hits.iter().map(|h| (h.id, h.score)).collect();
        prop_assert_eq!(composed_pairs, sequential);
    }
}

fn store_fidelity(n: u8) -> bees::store::Fidelity {
    use bees::store::Fidelity;
    match n % 4 {
        0 => Fidelity::OnDevice,
        1 => Fidelity::Thumbnail,
        2 => Fidelity::Partial,
        _ => Fidelity::Full,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn store_ledger_counts_every_insert(
        ops in proptest::collection::vec((1usize..5000, 0u64..6, 0u8..4), 1..40)
    ) {
        use bees::store::{ContentStore, InsertOutcome, StorePayload};
        let mut store = ContentStore::new();
        let mut stored = 0usize;
        let mut hits = 0usize;
        for (i, &(size, fingerprint, f)) in ops.iter().enumerate() {
            let payload = StorePayload::Size { size, fingerprint };
            match store.insert(i as u64, payload, store_fidelity(f), i as f64) {
                InsertOutcome::Stored { len } => stored += len,
                InsertOutcome::DedupHit => hits += 1,
            }
        }
        // Every image is filed, every byte is accounted exactly once, and
        // the ledger identity holds with no recompression pass run.
        prop_assert_eq!(store.image_count(), ops.len());
        prop_assert_eq!(store.blob_count() + hits, ops.len());
        prop_assert_eq!(store.ledger().stored_bytes, stored);
        prop_assert_eq!(store.ledger().dedup_hits, hits);
        prop_assert_eq!(store.ledger().reclaimed_bytes, 0);
        prop_assert_eq!(
            store.live_bytes(),
            store.ledger().stored_bytes - store.ledger().reclaimed_bytes
        );
        // Each image resolves to a blob that counts it, and sits in its own
        // group (grouping is the server's job, not insert's).
        for i in 0..ops.len() as u64 {
            let blob = store.blob_of(i).expect("inserted image resolves");
            prop_assert!(blob.refs >= 1);
            prop_assert!(store.group_of(i).contains(&i));
        }
        // Two identical replays lay out identically.
        let mut replay = ContentStore::new();
        for (i, &(size, fingerprint, f)) in ops.iter().enumerate() {
            let payload = StorePayload::Size { size, fingerprint };
            replay.insert(i as u64, payload, store_fidelity(f), i as f64);
        }
        prop_assert_eq!(store.layout_digest(), replay.layout_digest());
    }

    #[test]
    fn store_dedup_keeps_the_best_fidelity_copy(
        ops in proptest::collection::vec(
            (proptest::collection::vec(0u8..4, 1..6), 0u8..4),
            1..30,
        )
    ) {
        use bees::store::{ContentStore, Fidelity, StorePayload};
        use std::collections::HashMap;
        let mut store = ContentStore::new();
        let mut best: HashMap<Vec<u8>, Fidelity> = HashMap::new();
        for (i, (bytes, f)) in ops.iter().enumerate() {
            let fid = store_fidelity(*f);
            store.insert(i as u64, StorePayload::Bytes(bytes.clone()), fid, 0.0);
            let e = best.entry(bytes.clone()).or_insert(fid);
            if fid > *e {
                *e = fid;
            }
            // A dedup hit must never downgrade the shared blob's fidelity.
            prop_assert_eq!(store.blob_of(i as u64).expect("stored").fidelity, best[bytes]);
        }
    }

    #[test]
    fn store_group_merges_are_order_invariant(
        n in 2usize..12,
        edges in proptest::collection::vec((0usize..12, 0usize..12), 0..20)
    ) {
        use bees::store::{ContentStore, Fidelity, StorePayload};
        let build = |order: &[(usize, usize)]| {
            let mut store = ContentStore::new();
            for i in 0..n as u64 {
                let payload = StorePayload::Size { size: 100, fingerprint: i };
                store.insert(i, payload, Fidelity::Full, 0.0);
            }
            for &(a, b) in order {
                store.merge_groups((a % n) as u64, (b % n) as u64);
            }
            let groups: Vec<Vec<u64>> =
                (0..n as u64).map(|i| store.group_of(i).to_vec()).collect();
            (groups, store.layout_digest())
        };
        let forward = build(&edges);
        let mut reversed = edges.clone();
        reversed.reverse();
        // The final partition (and the canonical digest) depends only on
        // which merges happened, never on their order, and membership stays
        // ascending.
        prop_assert_eq!(&forward, &build(&reversed));
        for members in &forward.0 {
            prop_assert!(members.windows(2).all(|w| w[0] < w[1]), "{members:?}");
        }
    }

    #[test]
    fn store_recompression_skips_stubs_and_is_idempotent(
        ops in proptest::collection::vec((1usize..5000, 0u64..6, 0u8..4), 1..30)
    ) {
        use bees::store::{ContentStore, StorageConfig, StorePayload};
        let mut store = ContentStore::new();
        for (i, &(size, fingerprint, f)) in ops.iter().enumerate() {
            let payload = StorePayload::Size { size, fingerprint };
            store.insert(i as u64, payload, store_fidelity(f), 0.0);
        }
        // Fully permissive gates: only the no-real-bytes gate can hold.
        let cfg = StorageConfig {
            recompress_min_age_s: 0.0,
            ..StorageConfig::default()
        };
        let before = store.layout_digest();
        let first = store.run_recompression(1e9, &cfg);
        // Size-only stubs carry no bytes: nothing to re-encode, nothing
        // marked, nothing reclaimed — and a second pass changes nothing.
        prop_assert_eq!(first.recompressed, 0);
        prop_assert_eq!(first.bytes_reclaimed, 0);
        prop_assert_eq!(store.layout_digest(), before);
        let second = store.run_recompression(1e9, &cfg);
        prop_assert_eq!(second.recompressed, 0);
        prop_assert_eq!(store.layout_digest(), before);
        prop_assert_eq!(store.ledger().reclaimed_bytes, 0);
    }
}
