//! Determinism and serialization: the whole stack is seeded, so identical
//! inputs must produce byte-identical outputs — the property every
//! experiment in `EXPERIMENTS.md` relies on.

use bees::core::schemes::{BatchCtx, Bees, UploadScheme};
use bees::core::{BatchReport, BeesConfig, Client, Server};
use bees::datasets::{disaster_batch, kentucky_like, ParisConfig, ParisLike, SceneConfig};
use bees::features::orb::Orb;
use bees::features::FeatureExtractor;
use bees::net::BandwidthTrace;

fn small_scene() -> SceneConfig {
    SceneConfig {
        width: 128,
        height: 96,
        n_shapes: 12,
        texture_amp: 8.0,
    }
}

#[test]
fn full_upload_run_is_deterministic() {
    let run = || -> BatchReport {
        let mut config = BeesConfig::default();
        config.trace = BandwidthTrace::constant(200_000.0).unwrap();
        let data = disaster_batch(99, 10, 2, 0.25, small_scene());
        let scheme = Bees::adaptive(&config);
        let mut server = Server::try_new(&config).unwrap();
        scheme.preload_server(&mut server, &data.server_preload);
        let mut client = Client::try_new(0, &config).unwrap();
        scheme
            .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn full_pipeline_is_identical_across_thread_counts() {
    // The deterministic runtime promises bit-identical results at any
    // worker count. Run the complete ORB → CBRD → SSMM → AIU pipeline at
    // 1, 2, and 8 threads and compare the serialized reports byte for
    // byte. `set_threads` (not `BEES_THREADS`) is used because the env
    // default is cached once per process.
    let run = || -> String {
        let mut config = BeesConfig::default();
        config.trace = BandwidthTrace::constant(200_000.0).unwrap();
        let data = disaster_batch(42, 10, 2, 0.25, small_scene());
        let scheme = Bees::adaptive(&config);
        let mut server = Server::try_new(&config).unwrap();
        scheme.preload_server(&mut server, &data.server_preload);
        let mut client = Client::try_new(0, &config).unwrap();
        let report = scheme
            .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
            .unwrap();
        serde_json::to_string(&report).expect("report serializes")
    };
    bees::runtime::set_threads(1);
    let single = run();
    for threads in [2, 8] {
        bees::runtime::set_threads(threads);
        let multi = run();
        bees::runtime::set_threads(0);
        assert_eq!(single, multi, "report differs at {threads} threads");
    }
}

#[test]
fn fault_injected_pipeline_is_identical_across_thread_counts() {
    // Same thread-sweep contract, but with an aggressive fault model on a
    // fluctuating trace: blackouts, drops, retries, backoff, and the
    // degradation ladder must all be derived from seeds alone, never from
    // timing or worker interleaving.
    let run = || -> String {
        let mut config = BeesConfig::default();
        config.trace = BandwidthTrace::disaster_wifi(0xFA11);
        config.fault = bees::net::FaultModel::new(0xFA11, 0.35, 0.4, 12.0, 5.0)
            .and_then(|f| f.with_corruption(0.2))
            .expect("fault parameters are valid");
        config.battery = bees::energy::Battery::from_joules(1e7);
        let data = disaster_batch(42, 10, 2, 0.25, small_scene());
        let scheme = Bees::adaptive(&config);
        let mut server = Server::try_new(&config).unwrap();
        scheme.preload_server(&mut server, &data.server_preload);
        let mut client = Client::try_new(0, &config).unwrap();
        let report = scheme
            .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
            .unwrap();
        serde_json::to_string(&report).expect("report serializes")
    };
    bees::runtime::set_threads(1);
    let single = run();
    for threads in [2, 8] {
        bees::runtime::set_threads(threads);
        let multi = run();
        bees::runtime::set_threads(0);
        assert_eq!(single, multi, "faulty report differs at {threads} threads");
    }
}

#[test]
fn telemetry_trace_is_byte_identical_across_thread_counts() {
    // The tentpole contract of the telemetry subsystem: spans are opened
    // and closed against the client's virtual clock on the orchestration
    // thread, so the JSONL trace — manifest, span order, every attribute —
    // is byte-identical no matter how many workers the runtime uses.
    use bees::telemetry::{JsonlSink, RunManifest, SharedBuf, Telemetry};
    use std::sync::Arc;

    let run = || -> String {
        let mut config = BeesConfig::default();
        config.trace = BandwidthTrace::constant(200_000.0).unwrap();
        let data = disaster_batch(42, 10, 2, 0.25, small_scene());
        let scheme = Bees::adaptive(&config);
        let mut server = Server::try_new(&config).unwrap();
        scheme.preload_server(&mut server, &data.server_preload);
        let mut client = Client::try_new(0, &config).unwrap();
        let buf = SharedBuf::new();
        let telemetry = Telemetry::with_sinks(vec![Arc::new(JsonlSink::new(buf.clone()))]);
        telemetry.emit_manifest(&RunManifest::new(&format!("{config:?}"), 42));
        let mut ctx =
            BatchCtx::new(&mut client, &mut server, &data.batch).with_telemetry(telemetry);
        scheme.upload(&mut ctx).unwrap();
        buf.contents_string()
    };
    bees::runtime::set_threads(1);
    let single = run();
    assert!(single.lines().next().unwrap().starts_with("{\"manifest\":"));
    assert!(single.contains("\"span\":\"afe.orb\""));
    assert!(single.contains("\"span\":\"net.transmit\""));
    for threads in [2, 8] {
        bees::runtime::set_threads(threads);
        let multi = run();
        bees::runtime::set_threads(0);
        assert_eq!(single, multi, "trace differs at {threads} threads");
    }
}

#[test]
fn orb_features_are_bitwise_stable() {
    let img = kentucky_like(3, 1, small_scene())[0].images[0].to_gray();
    let orb = Orb::default();
    let f1 = orb.extract(&img);
    let f2 = orb.extract(&img);
    assert_eq!(f1, f2);
}

#[test]
fn datasets_are_reproducible_across_instantiations() {
    let a = ParisLike::generate(
        5,
        ParisConfig {
            n_locations: 10,
            n_images: 30,
            scene: small_scene(),
            ..ParisConfig::default()
        },
    );
    let b = ParisLike::generate(
        5,
        ParisConfig {
            n_locations: 10,
            n_images: 30,
            scene: small_scene(),
            ..ParisConfig::default()
        },
    );
    for i in [0usize, 15, 29] {
        assert_eq!(a.image(i).image, b.image(i).image);
    }
}

#[test]
fn reports_serialize_and_roundtrip() {
    let mut config = BeesConfig::default();
    config.trace = BandwidthTrace::constant(200_000.0).unwrap();
    let data = disaster_batch(7, 6, 1, 0.25, small_scene());
    let scheme = Bees::adaptive(&config);
    let mut server = Server::try_new(&config).unwrap();
    scheme.preload_server(&mut server, &data.server_preload);
    let mut client = Client::try_new(0, &config).unwrap();
    let report = scheme
        .upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))
        .unwrap();

    let json = serde_json::to_string(&report).expect("report serializes");
    assert!(json.contains("uploaded_images"));
    let back: BatchReport = serde_json::from_str(&json).expect("report deserializes");
    assert_eq!(back, report);

    // The configuration itself round-trips too (experiment archival).
    let cfg_json = serde_json::to_string(&config).expect("config serializes");
    let _cfg_back: BeesConfig = serde_json::from_str(&cfg_json).expect("config deserializes");
}

#[test]
fn config_is_cloneable_and_debuggable() {
    let config = BeesConfig::default();
    let cloned = config.clone();
    let dbg = format!("{cloned:?}");
    assert!(dbg.contains("BeesConfig"));
    assert!(dbg.contains("edr"));
}

#[test]
fn fleet_report_is_identical_across_threads_and_shards() {
    // The fleet session's acceptance property: the hand-rolled JSON report
    // is byte-identical across worker counts (1/2/8) *and* server shard
    // counts (1/2/4). Uses `FleetReport::to_json` (not serde_json) so the
    // comparison covers the exact bytes the report promises.
    use bees::core::sessions::{run_fleet, FleetConfig};
    use bees::core::IndexBackend;

    let fleet = FleetConfig {
        n_devices: 3,
        rounds: 2,
        group_size: 4,
        shared_per_group: 2,
        interval_s: 30.0,
        scene: small_scene(),
        seed: 0xF1EE7,
        pulldown: None,
    };
    let run = |shards: usize| -> String {
        let config = BeesConfig {
            trace: BandwidthTrace::constant(200_000.0).unwrap(),
            index_backend: IndexBackend::Mih,
            server_shards: shards,
            ..BeesConfig::default()
        };
        run_fleet(&Bees::adaptive(&config), &config, &fleet)
            .unwrap()
            .to_json()
    };

    bees::runtime::set_threads(1);
    let baseline = run(1);
    for threads in [1usize, 2, 8] {
        for shards in [1usize, 2, 4] {
            bees::runtime::set_threads(threads);
            let report = run(shards);
            bees::runtime::set_threads(0);
            assert_eq!(
                baseline, report,
                "fleet report differs at {threads} threads, {shards} shards"
            );
        }
    }
}

#[test]
fn retrieval_result_is_identical_across_threads_and_shards() {
    // The retrieval acceptance property: a composite query (geo radius +
    // time window + descriptor probe + on-device catalog) serialized
    // through `RetrievalResult::to_json` is byte-identical across worker
    // counts (1/2/8) and server shard counts (1/2/4).
    use bees::core::{IndexBackend, IngestRequest, RetrievalQuery, Server};

    let run = |shards: usize| -> String {
        let config = BeesConfig {
            index_backend: IndexBackend::Mih,
            server_shards: shards,
            ..BeesConfig::default()
        };
        let mut server = Server::try_new(&config).unwrap();
        let orb = Orb::new(config.orb);
        let data = disaster_batch(77, 6, 0, 0.0, small_scene());
        for (i, img) in data.batch.iter().enumerate() {
            server.set_time(10.0 * i as f64);
            let f = orb.extract(&img.to_gray());
            if i == 4 {
                // One image never uploaded: it lives on device 3's catalog.
                server.ingest(
                    IngestRequest::on_device(3, 2048)
                        .with_features(f)
                        .with_geotag((0.01, 0.0)),
                );
            } else {
                server.ingest(
                    IngestRequest::full(1000 + i)
                        .with_features(f)
                        .with_geotag(((i % 2) as f64 * 0.01, 0.0)),
                );
            }
        }
        let probe = orb.extract(&data.batch[0].to_gray());
        let query = RetrievalQuery::new()
            .near(0.0, 0.0, 25.0)
            .within_time(0.0, 40.0)
            .similar_to(&probe)
            .include_on_device(true)
            .top_k(4);
        server.answer(&query).to_json()
    };

    bees::runtime::set_threads(1);
    let baseline = run(1);
    assert!(
        baseline.contains("\"provenance\":\"full\""),
        "the probe must hit its own upload: {baseline}"
    );
    for threads in [1usize, 2, 8] {
        for shards in [1usize, 2, 4] {
            bees::runtime::set_threads(threads);
            let result = run(shards);
            bees::runtime::set_threads(0);
            assert_eq!(
                baseline, result,
                "retrieval result differs at {threads} threads, {shards} shards"
            );
        }
    }
}

#[test]
fn pulldown_fleet_report_is_identical_across_threads_and_shards() {
    // The pull-down sweep rides the same determinism guarantee: enabling
    // `FleetConfig::pulldown` must not introduce any thread- or
    // shard-dependent byte into the report.
    use bees::core::sessions::{run_fleet, FleetConfig, PulldownConfig};
    use bees::core::IndexBackend;

    let fleet = FleetConfig {
        n_devices: 4,
        rounds: 2,
        group_size: 4,
        shared_per_group: 2,
        interval_s: 30.0,
        scene: small_scene(),
        seed: 0xF1EE7,
        pulldown: Some(PulldownConfig::default()),
    };
    let run = |shards: usize| -> String {
        let mut config = BeesConfig {
            trace: BandwidthTrace::constant(200_000.0).unwrap(),
            index_backend: IndexBackend::Mih,
            server_shards: shards,
            ..BeesConfig::default()
        };
        config.cell.enabled = true;
        config.cell.capacity = BandwidthTrace::constant(48_000.0).unwrap();
        config.cell.epoch_s = 20.0;
        config.fault = bees::net::FaultModel::new(0x9E11, 0.6, 0.0, 1e9, 1.0).unwrap();
        config.retry.max_attempts = 2;
        config.retry.chunk_bytes = 256;
        run_fleet(&Bees::adaptive(&config), &config, &fleet)
            .unwrap()
            .to_json()
    };

    bees::runtime::set_threads(1);
    let baseline = run(1);
    for threads in [1usize, 2, 8] {
        for shards in [1usize, 2, 4] {
            bees::runtime::set_threads(threads);
            let report = run(shards);
            bees::runtime::set_threads(0);
            assert_eq!(
                baseline, report,
                "pull-down fleet report differs at {threads} threads, {shards} shards"
            );
        }
    }
}

#[test]
fn fleet_report_is_identical_across_threads_and_shards_with_corruption_faults() {
    // The salvage acceptance sweep: with every fault mode on — drops that
    // cut transfers mid-payload, blackout windows, and CRC-caught chunk
    // corruption — the fleet report (including the salvaged/upgraded
    // partial-image counters and the Salvaged energy bucket feeding them)
    // stays byte-identical across worker counts (1/2/8) and server shard
    // counts (1/2/4).
    use bees::core::sessions::{run_fleet, FleetConfig};
    use bees::core::IndexBackend;

    let fleet = FleetConfig {
        n_devices: 3,
        rounds: 2,
        group_size: 4,
        shared_per_group: 2,
        interval_s: 30.0,
        scene: small_scene(),
        seed: 0xF1EE7,
        pulldown: None,
    };
    let run = |shards: usize| -> String {
        let mut config = BeesConfig {
            trace: BandwidthTrace::disaster_wifi(0xFA11),
            index_backend: IndexBackend::Mih,
            server_shards: shards,
            ..BeesConfig::default()
        };
        config.fault = bees::net::FaultModel::new(0xFA11, 0.6, 0.4, 12.0, 5.0)
            .and_then(|f| f.with_corruption(0.25))
            .expect("fault parameters are valid");
        config.battery = bees::energy::Battery::from_joules(1e9);
        config.retry.max_attempts = 3;
        config.retry.chunk_bytes = 128;
        run_fleet(&Bees::adaptive(&config), &config, &fleet)
            .unwrap()
            .to_json()
    };

    bees::runtime::set_threads(1);
    let baseline = run(1);
    // The storm must actually exercise the salvage rung, or the sweep
    // proves nothing about its determinism.
    assert!(
        !baseline.contains("\"salvaged_images\":0,"),
        "no salvage under the corruption storm: {baseline}"
    );
    for threads in [1usize, 2, 8] {
        for shards in [1usize, 2, 4] {
            bees::runtime::set_threads(threads);
            let report = run(shards);
            bees::runtime::set_threads(0);
            assert_eq!(
                baseline, report,
                "corrupted-fleet report differs at {threads} threads, {shards} shards"
            );
        }
    }
}

#[test]
fn contended_fleet_report_is_identical_across_threads_and_shards() {
    // The shared-cell acceptance sweep: with the cell enabled, an outage
    // fault cutting it dark half the time, and the utility scheduler
    // ranking the cohort, the fleet report — grant/denial counters,
    // deadline abandons, per-epoch utilization series and all — stays
    // byte-identical across worker counts (1/2/8) and server shard counts
    // (1/2/4). The airtime scheduler runs on the orchestration thread from
    // seeded inputs only, so neither knob may move a byte.
    use bees::core::sessions::{run_fleet, FleetConfig};
    use bees::core::{IndexBackend, SchedulerPolicy};

    let fleet = FleetConfig {
        n_devices: 4,
        rounds: 2,
        group_size: 4,
        shared_per_group: 2,
        interval_s: 30.0,
        scene: small_scene(),
        seed: 0xF1EE7,
        pulldown: None,
    };
    let run = |shards: usize| -> String {
        let mut config = BeesConfig {
            trace: BandwidthTrace::constant(200_000.0).unwrap(),
            index_backend: IndexBackend::Mih,
            server_shards: shards,
            scheduler: SchedulerPolicy::Utility,
            ..BeesConfig::default()
        };
        config.battery = bees::energy::Battery::from_joules(1e9);
        config.cell.enabled = true;
        config.cell.capacity = BandwidthTrace::constant(32_000.0).unwrap();
        config.cell.epoch_s = 20.0;
        config.cell.outage = bees::net::FaultModel::new(0xCE11, 0.0, 0.5, 40.0, 20.0)
            .expect("outage parameters are valid");
        run_fleet(&Bees::adaptive(&config), &config, &fleet)
            .unwrap()
            .to_json()
    };

    bees::runtime::set_threads(1);
    let baseline = run(1);
    // The cell must genuinely contend, or the sweep proves nothing about
    // the scheduler's determinism.
    assert!(
        !baseline.contains("\"grants_denied\":0,")
            || !baseline.contains("\"deadline_abandons\":0,"),
        "no contention under the oversubscribed cell: {baseline}"
    );
    for threads in [1usize, 2, 8] {
        for shards in [1usize, 2, 4] {
            bees::runtime::set_threads(threads);
            let report = run(shards);
            bees::runtime::set_threads(0);
            assert_eq!(
                baseline, report,
                "contended-fleet report differs at {threads} threads, {shards} shards"
            );
        }
    }
}

/// The SSMM pairwise similarity graph must not move a single bit when the
/// descriptor layout (AoS vs SoA blocks) or the thread count changes —
/// the invariance the BEES scheme's in-batch stage relies on after the
/// SoA restructuring.
#[test]
fn ssmm_similarity_graph_is_layout_and_thread_invariant() {
    use bees::features::similarity::{
        jaccard_similarity, jaccard_similarity_blocks, SimilarityConfig,
    };
    use bees::features::DescriptorBlock;
    use bees::submodular::SimilarityGraph;

    let orb = Orb::new(BeesConfig::default().orb);
    let data = disaster_batch(0xD15A, 6, 1, 0.25, small_scene());
    let features: Vec<_> = data
        .batch
        .iter()
        .map(|img| orb.extract(&img.to_gray()))
        .collect();
    let blocks: Vec<DescriptorBlock> = features
        .iter()
        .map(|f| f.descriptors.to_block().expect("ORB features are binary"))
        .collect();
    let cfg = SimilarityConfig::default();

    bees::runtime::set_threads(1);
    let reference = SimilarityGraph::from_pairwise_par(features.len(), |a, b| {
        jaccard_similarity(&features[a], &features[b], &cfg)
    });
    for threads in [1usize, 2, 8] {
        bees::runtime::set_threads(threads);
        let aos = SimilarityGraph::from_pairwise_par(features.len(), |a, b| {
            jaccard_similarity(&features[a], &features[b], &cfg)
        });
        let soa = SimilarityGraph::from_pairwise_par(features.len(), |a, b| {
            jaccard_similarity_blocks(&blocks[a], &blocks[b], &cfg)
        });
        bees::runtime::set_threads(0);
        assert_eq!(reference, aos, "AoS graph moved at {threads} threads");
        assert_eq!(reference, soa, "SoA graph moved at {threads} threads");
    }
}

#[test]
fn storage_layout_is_identical_across_threads_and_shards() {
    // The content store's acceptance property: after the same ingest
    // sequence (real payload bytes, exact duplicates, commit-time grouping)
    // plus a cold-recompression pass, the store lays out byte-identically
    // across worker counts (1/2/8) and server shard counts (1/2/4) — pinned
    // through `layout_digest` and the ledger counters.
    use bees::core::{IngestRequest, RetrievalQuery, Server};
    use bees::datasets::{Scene, ViewJitter};
    use bees::image::codec;

    let run = |shards: usize| -> (u64, usize, usize, usize, usize) {
        let config = BeesConfig {
            server_shards: shards,
            ..BeesConfig::default()
        };
        let mut server = Server::try_new(&config).unwrap();
        let orb = Orb::new(config.orb);
        let mut probe = None;
        let mut t = 0.0;
        for s in 0..3u64 {
            let scene = Scene::new(60 + s, small_scene());
            let mut lead = None;
            for v in 0..3u32 {
                let img = scene.render(&ViewJitter {
                    dx: v as f32 * 1.5,
                    dy: -(v as f32),
                    brightness: v as i32 * 4,
                    ..ViewJitter::identity()
                });
                let payload = codec::encode_rgb(&img, 70).unwrap();
                let f = orb.extract(&img.to_gray());
                if probe.is_none() {
                    probe = Some(f.clone());
                }
                if lead.is_none() {
                    lead = Some((payload.clone(), f.clone()));
                }
                server.set_time(t);
                server.ingest(
                    IngestRequest::full(payload.len())
                        .with_bytes(payload)
                        .with_features(f),
                );
                t += 10.0;
            }
            // A byte-identical re-upload: must dedup at every shard count.
            let (payload, f) = lead.unwrap();
            server.set_time(t);
            server.ingest(
                IngestRequest::full(payload.len())
                    .with_bytes(payload)
                    .with_features(f),
            );
            t += 10.0;
            server.answer(&RetrievalQuery::new().similar_to(probe.as_ref().unwrap()).top_k(1));
        }
        server.set_time(t + 1e6);
        server.run_cold_recompression();
        let store = server.storage();
        (
            store.layout_digest(),
            store.ledger().stored_bytes,
            store.ledger().reclaimed_bytes,
            store.ledger().dedup_hits,
            store.ledger().epochs.len(),
        )
    };

    bees::runtime::set_threads(1);
    let baseline = run(1);
    assert!(baseline.3 > 0, "duplicates must dedup: {baseline:?}");
    assert!(baseline.2 > 0, "the cold pass must reclaim: {baseline:?}");
    for threads in [1usize, 2, 8] {
        for shards in [1usize, 2, 4] {
            bees::runtime::set_threads(threads);
            let result = run(shards);
            bees::runtime::set_threads(0);
            assert_eq!(
                baseline, result,
                "store layout differs at {threads} threads, {shards} shards"
            );
        }
    }
}
