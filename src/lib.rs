#![warn(missing_docs)]

//! Facade crate for the BEES reproduction workspace.
//!
//! Re-exports every subsystem so downstream users (and the integration tests
//! and examples in this repository) can depend on a single crate:
//!
//! ```
//! use bees::core::schemes::SchemeKind;
//!
//! assert_eq!(SchemeKind::Bees.to_string(), "BEES");
//! ```
//!
//! See the workspace `README.md` for the architecture overview and
//! `DESIGN.md` for the paper-to-module map.

pub use bees_core as core;
pub use bees_datasets as datasets;
pub use bees_energy as energy;
pub use bees_features as features;
pub use bees_image as image;
pub use bees_index as index;
pub use bees_net as net;
pub use bees_runtime as runtime;
pub use bees_store as store;
pub use bees_submodular as submodular;
pub use bees_telemetry as telemetry;
