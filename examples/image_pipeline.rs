//! A tour of the substrates: render a synthetic scene, extract ORB
//! features from it at several bitmap-compression levels, score similarity
//! against a second view, and encode it with the DCT codec at several
//! qualities — the raw ingredients of Approximate Image Sharing.
//!
//! Run with: `cargo run --release --example image_pipeline`

use bees::datasets::{Scene, SceneConfig};
use bees::features::orb::Orb;
use bees::features::similarity::{jaccard_similarity, SimilarityConfig};
use bees::features::FeatureExtractor;
use bees::image::{codec, metrics, resize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scene = Scene::new(99, SceneConfig::default());
    let views = scene.render_views(1, 2);
    let (a, b) = (&views[0], &views[1]);
    let gray_a = a.to_gray();
    let gray_b = b.to_gray();

    let orb = Orb::default();
    let sim_cfg = SimilarityConfig::default();
    let fb = orb.extract(&gray_b);

    println!("Approximate Feature Extraction: similarity of two views of one scene");
    println!(
        "{:<14}{:>12}{:>14}{:>12}",
        "compression", "keypoints", "extract px", "similarity"
    );
    for c in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let compressed = resize::compress_bitmap(&gray_a, c)?;
        let (fa, stats) = orb.extract_with_stats(&compressed);
        let sim = jaccard_similarity(&fa, &fb, &sim_cfg);
        println!(
            "{:<14.1}{:>12}{:>14}{:>12.3}",
            c,
            fa.len(),
            stats.pixels_processed,
            sim
        );
    }

    println!("\nApproximate Image Uploading: DCT codec quality vs size vs SSIM");
    println!("{:<10}{:>12}{:>10}", "quality", "bytes", "SSIM");
    for q in [90u8, 50, 15, 5] {
        let encoded = codec::encode_rgb(a, q)?;
        let decoded = codec::decode_rgb(&encoded)?;
        let ssim = metrics::ssim(&gray_a, &decoded.to_gray())?;
        println!("{:<10}{:>12}{:>10.3}", q, encoded.len(), ssim);
    }
    println!("\nraw size: {} bytes", a.raw_byte_size());
    Ok(())
}
