//! Disaster-relief scenario: compare all six upload schemes on the same
//! batch of disaster images and print the trade-off table the paper's
//! evaluation is built around.
//!
//! Run with: `cargo run --release --example disaster_relief`

use bees::core::schemes::{
    BatchCtx, Bees, DirectUpload, Mrc, PhotoNetLike, SmartEye, UploadScheme,
};
use bees::core::{BeesConfig, Client, Server};
use bees::datasets::{disaster_batch, SceneConfig};
use bees::net::BandwidthTrace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A steady 256 Kbps link makes the schemes directly comparable; swap in
    // BandwidthTrace::disaster_wifi(seed) for the fluctuating 0-512 Kbps
    // emulation.
    let config = BeesConfig {
        trace: BandwidthTrace::constant(256_000.0)?,
        ..BeesConfig::default()
    };

    // 30 images, 3 of them in-batch duplicates, half cross-batch redundant.
    let data = disaster_batch(2024, 30, 3, 0.5, SceneConfig::default());
    println!(
        "batch: {} images ({} cross-batch redundant, {} in-batch similars)\n",
        data.batch.len(),
        data.cross_batch_redundant.len(),
        data.in_batch_redundant_count()
    );

    let schemes: Vec<Box<dyn UploadScheme>> = vec![
        Box::new(DirectUpload::new(&config)),
        Box::new(PhotoNetLike::new(&config)),
        Box::new(SmartEye::new(&config)),
        Box::new(Mrc::new(&config)),
        Box::new(Bees::without_adaptation(&config)),
        Box::new(Bees::adaptive(&config)),
    ];

    println!(
        "{:<14}{:>9}{:>9}{:>9}{:>12}{:>12}{:>10}",
        "scheme", "uploaded", "x-batch", "in-batch", "uplink KiB", "energy J", "delay s"
    );
    for scheme in &schemes {
        // Fresh server/client per scheme so each sees identical conditions.
        let mut server = Server::try_new(&config).expect("config is valid");
        scheme.preload_server(&mut server, &data.server_preload);
        let mut client = Client::try_new(0, &config)?;
        let r = scheme.upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))?;
        println!(
            "{:<14}{:>9}{:>9}{:>9}{:>12.1}{:>12.1}{:>10.1}",
            r.scheme,
            r.uploaded_images,
            r.skipped_cross_batch,
            r.skipped_in_batch,
            r.uplink_bytes as f64 / 1024.0,
            r.active_energy(),
            r.total_delay_s,
        );
    }
    println!("\nBEES uploads the fewest bytes because it eliminates both redundancy kinds");
    println!("and compresses what remains (Approximate Image Uploading).");
    Ok(())
}
