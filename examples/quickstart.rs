//! Quickstart: upload one image batch through BEES and inspect the report.
//!
//! Run with: `cargo run --release --example quickstart`

use bees::core::schemes::{BatchCtx, Bees, UploadScheme};
use bees::core::{BeesConfig, Client, PreloadBatch, Server};
use bees::datasets::{disaster_batch, SceneConfig};
use bees::energy::EnergyCategory;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Everything is configurable; the defaults mirror the paper
    // (3150 mAh battery, 0-512 Kbps disaster WiFi, EAC/EDR/EAU schemes).
    let config = BeesConfig::default();

    // A synthetic disaster batch: 20 images of which 2 are in-batch
    // duplicates and 25% already have similar images on the server.
    let data = disaster_batch(42, 20, 2, 0.25, SceneConfig::default());

    let mut server = Server::try_new(&config).expect("config is valid");
    server.preload(PreloadBatch::new(&data.server_preload));
    let mut client = Client::try_new(0, &config)?;

    let scheme = Bees::adaptive(&config);
    let report = scheme.upload(&mut BatchCtx::new(&mut client, &mut server, &data.batch))?;

    println!("BEES batch report");
    println!("  batch size          : {}", report.batch_size);
    println!("  uploaded            : {}", report.uploaded_images);
    println!("  skipped (cross-batch): {}", report.skipped_cross_batch);
    println!("  skipped (in-batch)  : {}", report.skipped_in_batch);
    println!(
        "  uplink              : {:.1} KiB",
        report.uplink_bytes as f64 / 1024.0
    );
    println!(
        "  downlink            : {:.1} KiB",
        report.downlink_bytes as f64 / 1024.0
    );
    println!("  total delay         : {:.1} s", report.total_delay_s);
    println!(
        "  energy (extraction) : {:.2} J",
        report.energy.get(EnergyCategory::FeatureExtraction)
    );
    println!(
        "  energy (features)   : {:.2} J",
        report.energy.get(EnergyCategory::FeatureUpload)
    );
    println!(
        "  energy (images)     : {:.2} J",
        report.energy.get(EnergyCategory::ImageUpload)
    );
    println!("  energy (total)      : {:.2} J", report.active_energy());
    println!("  battery remaining   : {:.2}%", client.ebat() * 100.0);
    Ok(())
}
