//! Server-side view: what the cloud accumulates as a fleet uploads through
//! BEES — index growth, feature storage (the Table I overhead), received
//! payload bytes, and geotag coverage.
//!
//! Run with: `cargo run --release --example server_analytics`

use bees::core::schemes::{BatchCtx, Bees, UploadScheme};
use bees::core::{BeesConfig, Client, Server};
use bees::datasets::{ParisConfig, ParisLike, SceneConfig};
use bees::net::BandwidthTrace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = BeesConfig {
        trace: BandwidthTrace::constant(256_000.0)?,
        ..BeesConfig::default()
    };

    // A small geotagged corpus split over three phones.
    let corpus = ParisLike::generate(
        11,
        ParisConfig {
            n_locations: 24,
            n_images: 72,
            scene: SceneConfig {
                width: 192,
                height: 144,
                n_shapes: 16,
                texture_amp: 10.0,
            },
            ..ParisConfig::default()
        },
    );
    let per_phone = corpus.len() / 3;

    let mut server = Server::try_new(&config).expect("config is valid");
    let scheme = Bees::adaptive(&config);

    println!(
        "{:<8}{:>10}{:>12}{:>14}{:>16}{:>12}",
        "phone", "uploaded", "indexed", "feat KiB", "payload KiB", "locations"
    );
    for phone in 0..3u64 {
        let mut client = Client::try_new(phone, &config)?;
        let lo = phone as usize * per_phone;
        let mut batch = Vec::with_capacity(per_phone);
        let mut tags = Vec::with_capacity(per_phone);
        for i in lo..lo + per_phone {
            let g = corpus.image(i);
            tags.push((g.lon, g.lat));
            batch.push(g.image);
        }
        let mut ctx = BatchCtx::new(&mut client, &mut server, &batch).with_geotags(&tags)?;
        let report = scheme.upload(&mut ctx)?;
        println!(
            "{:<8}{:>10}{:>12}{:>14.1}{:>16.1}{:>12}",
            phone,
            report.uploaded_images,
            server.indexed_images(),
            server.feature_bytes() as f64 / 1024.0,
            server.received_image_bytes() as f64 / 1024.0,
            server.unique_locations(),
        );
    }
    println!(
        "\nthe later phones upload less: the server's index already holds the popular\n\
         locations, so their photos are recognized as cross-batch redundant."
    );
    Ok(())
}
