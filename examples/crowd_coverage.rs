//! Crowdsourced situation-awareness scenario: a fleet of phones with
//! limited batteries uploads a geotagged photo corpus through a shared
//! server — how much of the map does each scheme reveal before the
//! batteries die? (The paper's Fig. 12 experiment at laptop scale.)
//!
//! Run with: `cargo run --release --example crowd_coverage`

use bees::core::schemes::{Bees, DirectUpload, UploadScheme};
use bees::core::sessions::{run_coverage, CoverageConfig};
use bees::core::BeesConfig;
use bees::datasets::{ParisConfig, SceneConfig};
use bees::energy::Battery;
use bees::net::BandwidthTrace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = BeesConfig {
        trace: BandwidthTrace::constant(256_000.0)?,
        // Small batteries: coverage, not patience, is the scarce resource.
        battery: Battery::from_joules(2500.0),
        ..BeesConfig::default()
    };

    let cov = CoverageConfig {
        n_phones: 4,
        group_size: 6,
        interval_s: 180.0,
        paris: ParisConfig {
            n_locations: 60,
            n_images: 240,
            zipf_s: 1.0,
            scene: SceneConfig {
                width: 192,
                height: 144,
                n_shapes: 16,
                texture_amp: 10.0,
            },
            ..ParisConfig::default()
        },
        seed: 7,
    };

    println!(
        "corpus: {} geotagged images over {} locations, {} phones\n",
        cov.paris.n_images, cov.paris.n_locations, cov.n_phones
    );

    for scheme in [
        &DirectUpload::new(&config) as &dyn UploadScheme,
        &Bees::adaptive(&config),
    ] {
        let r = run_coverage(scheme, &config, &cov)?;
        println!(
            "{:<14} received {:>4} images covering {:>3} of {:>3} locations ({} phones exhausted)",
            r.scheme, r.images_received, r.unique_locations, r.corpus_locations, r.phones_exhausted
        );
    }
    println!("\nBEES skips redundant shots of popular spots, so the same batteries light up more of the map.");
    Ok(())
}
